//! R7 `atomic_ordering` — every atomic the workspace uses is declared in
//! the per-crate table below, and every `Ordering::Relaxed` operation on a
//! **gate** atomic (one that other threads consult to decide whether, or
//! what, shared data may be touched) carries an `// ORDERING:` comment
//! within the three lines above it — the same discipline R2 applies to
//! `unsafe` via `// SAFETY:`.
//!
//! Why a table: memory orderings are a contract between *all* the code
//! touching one atomic, so the reviewable unit is the atomic, not the call
//! site. The table names each atomic (by canonical receiver, per crate)
//! and classifies it:
//!
//! * [`Class::Gate`] — the value gates access to shared state: the exec
//!   pool's `stop` flag and chunk `cursor`, the buffer pool's `pins` /
//!   `dirty` bits, the fault plan's `armed` fast-path flag. A relaxed
//!   load/store on one of these is only correct for a *reason* (a mutex
//!   already provides the happens-before edge, the value is advisory, the
//!   scope join publishes the data…), and that reason must be written
//!   down where the operation happens.
//! * [`Class::Stat`] — monotonic counters and hints (I/O stats, obs
//!   counters, LRU ticks, span ids) whose only cross-thread requirement
//!   is the atomicity of the RMW itself; `Relaxed` is self-justifying and
//!   needs no per-site comment.
//!
//! Receivers are **resolved through the symbol table**, not taken at
//! face value: `self.cursor`, a `let c = &self.cursor;` alias, a typed
//! parameter, or a static all resolve to their canonical field/static
//! name before the table lookup, so renaming a binding can neither dodge
//! the table nor trip it falsely. When the resolved declared type is
//! known and is *not* an atomic, an Ordering-shaped call on it (a user
//! `load(x, Ordering::…)`-alike) is skipped instead of denied.
//!
//! An atomic operation on a receiver **not** in its crate's table is a
//! deny: new atomics are a concurrency-surface change and must be
//! declared (and classified) here first, exactly as new metric names must
//! enter the R6 registry. Files outside `crates/<name>/src` (the root
//! binary, fixtures) are out of scope — the workspace keeps its atomics
//! in library crates.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;
use crate::rules::Analysis;
use crate::symbols::resolve_receiver;

pub const RULE: &str = "atomic_ordering";

/// How many lines above the operation an `// ORDERING:` comment may sit
/// (mirrors R2's SAFETY reach).
const REACH: u32 = 3;

/// Classification of a declared atomic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Gates access to shared data: relaxed uses need an `// ORDERING:`
    /// justification at every site.
    Gate,
    /// Monotonic statistic or hint: relaxed is self-justifying.
    Stat,
}

/// The per-crate atomic ordering table: `(crate, receiver, class)`.
/// The receiver is the *canonical* identifier the operation resolves to
/// (`stop.store(…)` → `stop`, `frame.pins.fetch_add(…)` → `pins`, and a
/// `let c = &self.cursor; c.fetch_add(…)` alias → `cursor`).
pub const ATOMICS: &[(&str, &str, Class)] = &[
    // hdsj-core: the query-lifecycle context. The cancel flag gates
    // whether workers keep running; the rest are usage statistics read
    // after the join completes.
    ("core", "cancel", Class::Gate),
    ("core", "polls", Class::Stat),
    ("core", "io_used", Class::Stat),
    ("core", "pages_used", Class::Stat),
    ("core", "checkpoints", Class::Stat),
    // The SIMD dispatch probe: gates which kernel tier every distance
    // evaluation takes, so each relaxed site must justify why that is
    // sound (idempotent probe — all racers store the same value).
    ("core", "DISPATCH", Class::Gate),
    // hdsj-exec: the pool's work-distribution atomics and the
    // debug-schedules instrumentation.
    ("exec", "cursor", Class::Gate),
    ("exec", "stop", Class::Gate),
    ("exec", "ENABLED", Class::Stat),
    ("exec", "SEED", Class::Stat),
    ("exec", "LIVE", Class::Stat),
    ("exec", "POINTS", Class::Stat),
    ("exec", "executed", Class::Stat),
    // hdsj-obs: span-id source, counter cells, and the sharded histogram
    // cells (bucket counts, per-shard sum/min/max, shard round-robin).
    ("obs", "next_id", Class::Stat),
    ("obs", "cell", Class::Stat),
    ("obs", "bucket", Class::Stat),
    ("obs", "sum", Class::Stat),
    ("obs", "min", Class::Stat),
    ("obs", "max", Class::Stat),
    ("obs", "smin", Class::Stat),
    ("obs", "smax", Class::Stat),
    ("obs", "NEXT_SHARD", Class::Stat),
    // hdsj-storage: pool frame state, fault-plan fast path, I/O counters,
    // and the debug-invariants bookkeeping.
    ("storage", "pins", Class::Gate),
    ("storage", "dirty", Class::Gate),
    ("storage", "armed", Class::Gate),
    ("storage", "last_used", Class::Stat),
    ("storage", "reads", Class::Stat),
    ("storage", "writes", Class::Stat),
    ("storage", "allocs", Class::Stat),
    ("storage", "hits", Class::Stat),
    ("storage", "evictions", Class::Stat),
    ("storage", "writebacks", Class::Stat),
    ("storage", "retries", Class::Stat),
    ("storage", "faults", Class::Stat),
    ("storage", "corruptions", Class::Stat),
    ("storage", "CHECKS", Class::Stat),
    ("storage", "NEXT_TOKEN", Class::Stat),
];

/// Methods that perform an atomic memory operation when called with an
/// `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn class_of(krate: &str, receiver: &str) -> Option<Class> {
    ATOMICS
        .iter()
        .find(|(c, r, _)| *c == krate && *r == receiver)
        .map(|&(_, _, class)| class)
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`).
fn crate_of(file: &FileModel) -> Option<String> {
    let mut comps = file.path.components().map(|c| c.as_os_str());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(|n| n.to_string_lossy().into_owned());
        }
    }
    None
}

pub fn check(a: &Analysis, fi: usize, out: &mut Vec<Diagnostic>) {
    let file = &a.files[fi];
    let Some(krate) = crate_of(file) else {
        return;
    };
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_method = ATOMIC_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_method {
            continue;
        }
        // Only calls that pass an `Ordering::…` are atomic operations;
        // `vec.swap(a, b)` or a serde `load()` never names one.
        let args_end = file.skip_group(i + 1);
        let orderings: Vec<&str> = (i + 2..args_end.saturating_sub(1))
            .filter(|&j| {
                toks[j].is_ident("Ordering")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
            })
            .filter_map(|j| toks.get(j + 3).map(|t| t.text.as_str()))
            .collect();
        if orderings.is_empty() {
            continue;
        }
        // Resolve the receiver to its canonical name and declared type.
        let recv_tok = i - 2;
        let (canonical, declared_ty) = if toks[recv_tok].kind == crate::lexer::TokenKind::Ident
        {
            let sym = file
                .enclosing_fn(i)
                .and_then(|span| a.symbols.fn_at(fi, span.body_start));
            match sym {
                Some(f) => {
                    let res = resolve_receiver(&a.symbols, file, f, recv_tok);
                    (res.name, res.ty)
                }
                None => (toks[recv_tok].text.clone(), None),
            }
        } else {
            (toks[recv_tok].text.clone(), None)
        };
        // A receiver whose declared type is known and not an atomic is
        // not an atomic operation at all (an Ordering-taking method on a
        // user type) — skip rather than deny.
        if declared_ty
            .as_deref()
            .is_some_and(|ty| !crate::symbols::ty_mentions(ty, "Atomic"))
        {
            continue;
        }
        let line = t.line;
        if file.is_test_line(line) || file.suppressed(RULE, line) {
            continue;
        }
        match class_of(&krate, &canonical) {
            None => out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line,
                message: format!(
                    "atomic `{canonical}` is not declared in the R7 per-crate ordering table \
                     (crates/analyze/src/rules/r7_atomic_ordering.rs): classify it as \
                     Gate or Stat there before using it"
                ),
            }),
            Some(Class::Gate) if orderings.contains(&"Relaxed") => {
                let documented = file.comments.iter().any(|c| {
                    c.text.contains("ORDERING:")
                        && (c.line == line || (c.end_line < line && c.end_line + REACH >= line))
                });
                if !documented {
                    out.push(Diagnostic {
                        rule: RULE,
                        level: Level::Deny,
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "`Ordering::Relaxed` on gate atomic `{canonical}` without an \
                             `// ORDERING:` comment explaining why relaxed is enough"
                        ),
                    });
                }
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Analysis;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![FileModel::parse(PathBuf::from(path), src)];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, 0, &mut out);
        out
    }

    #[test]
    fn undeclared_atomic_is_flagged() {
        let d = run(
            "crates/exec/src/x.rs",
            "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not declared"), "{d:?}");
    }

    #[test]
    fn bare_relaxed_gate_is_flagged() {
        let d = run(
            "crates/exec/src/x.rs",
            "fn f(stop: &AtomicBool) { stop.store(true, Ordering::Relaxed); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ORDERING:"), "{d:?}");
    }

    #[test]
    fn commented_gate_is_clean() {
        let d = run(
            "crates/exec/src/x.rs",
            "fn f(stop: &AtomicBool) {\n    // ORDERING: advisory; re-checked per claim.\n    stop.store(true, Ordering::Relaxed);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stat_atomics_need_no_comment() {
        let d = run(
            "crates/storage/src/x.rs",
            "fn f(&self) { self.reads.fetch_add(1, Ordering::Relaxed); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stronger_orderings_on_gates_are_clean() {
        let d = run(
            "crates/exec/src/x.rs",
            "fn f(stop: &AtomicBool) { stop.store(true, Ordering::SeqCst); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_atomic_swap_is_ignored() {
        let d = run(
            "crates/exec/src/x.rs",
            "fn f(v: &mut Vec<u8>) { v.swap(0, 1); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn files_outside_crates_are_out_of_scope() {
        let d = run(
            "src/bin/hdsj.rs",
            "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_and_suppressions_are_exempt() {
        let d = run(
            "crates/exec/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n}\nfn g(b: &AtomicU64) {\n    // allow(hdsj::atomic_ordering): scratch cell local to this fn.\n    b.load(Ordering::Relaxed);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn aliased_receivers_resolve_to_the_declared_atomic() {
        // The carried item from PR 5: `let c = &self.cursor;` used to look
        // up `c` (a false "not declared"); it now resolves to `cursor`,
        // a Gate, whose commented relaxed use is clean.
        let d = run(
            "crates/exec/src/x.rs",
            "struct Pool { cursor: AtomicUsize }\n\
             impl Pool {\n\
                 fn f(&self) {\n\
                     let c = &self.cursor;\n\
                     // ORDERING: claims are idempotent; the scope join publishes results.\n\
                     c.fetch_add(1, Ordering::Relaxed);\n\
                 }\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // Without the comment the alias is still recognized as the gate.
        let d = run(
            "crates/exec/src/x.rs",
            "struct Pool { cursor: AtomicUsize }\n\
             impl Pool {\n\
                 fn f(&self) {\n\
                     let c = &self.cursor;\n\
                     c.fetch_add(1, Ordering::Relaxed);\n\
                 }\n\
             }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`cursor`"), "{d:?}");
    }

    #[test]
    fn known_non_atomic_receiver_types_are_skipped() {
        // An Ordering-shaped call on a receiver whose declared type is not
        // an atomic is a user method, not an atomic op.
        let d = run(
            "crates/exec/src/x.rs",
            "struct Ring { slots: SlotMap }\n\
             impl Ring { fn f(&self) { self.slots.swap(1, Ordering::Relaxed); } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! R13 `unsafe_bounds` — every raw-pointer offset inside `core::simd`
//! (`xs.as_ptr().add(e)`, `slice.get_unchecked(e)`) must have its offset
//! expression *discharged* against a dominating checked precondition: an
//! `assert!`/`debug_assert!` conjunct, a loop guard, or an inverted
//! early-return guard that proves `e < receiver.len()` under the
//! dataflow engine's interval and symbolic-bound propagation.
//!
//! A discharged site is reported as a `note` (the proof witness is part
//! of the check's output — the self-check asserts every unsafe kernel
//! file carries at least one). An undischarged site is a `deny` naming
//! the witness expression and the missing bound, so the fix is always
//! "state the precondition the SAFETY comment already claims".

use crate::dataflow::{render, FnFlow};
use crate::diag::{Diagnostic, Level};
use crate::lexer::TokenKind;
use crate::parse::FileModel;
use std::collections::BTreeMap;

pub const RULE: &str = "unsafe_bounds";

/// Path fragment selecting the unsafe SIMD layer.
const SCOPE: &str = "core/src/simd";

/// One raw-offset site: the offset argument's token range, the token the
/// diagnostic anchors to, and the receiver walked back from the dot.
struct Site {
    arg: (usize, usize),
    pos: usize,
    recv: Option<(usize, String)>,
}

/// Walks the receiver chain (`xs`, `self.data`) ending just before `dot`.
fn receiver(file: &FileModel, dot: usize) -> Option<(usize, String)> {
    let toks = &file.tokens;
    let mut lo = dot;
    while lo > 0 && toks[lo - 1].kind == TokenKind::Ident {
        lo -= 1;
        if lo >= 2 && toks[lo - 1].is_punct('.') && toks[lo - 2].kind == TokenKind::Ident {
            lo -= 1;
            continue;
        }
        break;
    }
    (lo < dot).then(|| (lo, render(toks, lo, dot)))
}

/// A raw-pointer offset site: the offset expression's token range
/// `[lo, hi)`, the method-name token position, and the receiver chain
/// (start token + rendered text) when one was recognized.
pub(crate) type RawSite = (usize, usize, usize, Option<(usize, String)>);

/// Scans `file` for `.as_ptr().add(e)` / `.as_mut_ptr().add(e)` /
/// `.get_unchecked[_mut](e)` sites.
pub(crate) fn raw_offset_sites(file: &FileModel) -> Vec<RawSite> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let site = if toks
            .get(i + 1)
            .is_some_and(|t| t.is_ident("as_ptr") || t.is_ident("as_mut_ptr"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("add"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct('('))
        {
            let close = file.skip_group(i + 6);
            Some(Site {
                arg: (i + 7, close - 1),
                pos: i + 5,
                recv: receiver(file, i),
            })
        } else if toks
            .get(i + 1)
            .is_some_and(|t| t.is_ident("get_unchecked") || t.is_ident("get_unchecked_mut"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let close = file.skip_group(i + 2);
            Some(Site {
                arg: (i + 3, close - 1),
                pos: i + 1,
                recv: receiver(file, i),
            })
        } else {
            None
        };
        if let Some(s) = site {
            if s.arg.0 < s.arg.1 {
                out.push((s.arg.0, s.arg.1, s.pos, s.recv));
            }
        }
    }
    out
}

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    if !file.path.to_string_lossy().contains(SCOPE) {
        return;
    }
    let mut flows: BTreeMap<usize, FnFlow> = BTreeMap::new();
    for (lo, hi, pos, recv) in raw_offset_sites(file) {
        let line = file.tokens[pos].line;
        if file.is_test_line(line) || file.suppressed(RULE, line) {
            continue;
        }
        let Some(f) = file.enclosing_fn(pos) else {
            continue;
        };
        let flow = flows
            .entry(f.body_start)
            .or_insert_with(|| FnFlow::analyze(file, f));
        let Some((recv_lo, recv_name)) = recv else {
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line,
                message: format!(
                    "raw-pointer offset `{}` has an unrecognized receiver; bind the slice to a name so the bound can be discharged",
                    render(&file.tokens, lo, hi)
                ),
            });
            continue;
        };
        let site_text = render(&file.tokens, recv_lo, file.skip_group(pos + 1));
        match flow.discharge_index(file, lo, hi, pos, &recv_name) {
            Ok(proof) => out.push(Diagnostic {
                rule: RULE,
                level: Level::Note,
                path: file.path.clone(),
                line,
                message: format!(
                    "discharged: `{site_text}` — bound witnessed by `{}` (line {})",
                    proof.witness, proof.line
                ),
            }),
            Err(e) => out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line,
                message: format!(
                    "undischarged raw-pointer offset `{site_text}`: {e}; add a dominating assert!/guard establishing the bound"
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("crates/core/src/simd/x.rs"), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn asserted_offset_is_a_note_and_bare_offset_a_deny() {
        let d = run("fn good(xs: &[f64], at: usize) -> f64 {\n\
             debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n\
             fn bad(xs: &[f64], at: usize) -> f64 {\n\
             unsafe { *xs.as_ptr().add(at) }\n\
             }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].level, Level::Note);
        assert!(d[0].message.contains("witnessed by"), "{d:?}");
        assert_eq!(d[1].level, Level::Deny);
        assert!(d[1].message.contains("xs.as_ptr().add(at)"), "{d:?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let m = FileModel::parse(
            PathBuf::from("crates/core/src/kernels.rs"),
            "fn f(xs: &[f64]) -> f64 { unsafe { *xs.as_ptr().add(1) } }",
        );
        let mut out = Vec::new();
        check(&m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn get_unchecked_behind_guard_is_discharged() {
        let d = run("fn f(ids: &[u32], t: usize) -> u32 {\n\
             if t < ids.len() {\n\
             return unsafe { *ids.get_unchecked(t) };\n\
             }\n\
             0\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].level, Level::Note, "{d:?}");
    }

    #[test]
    fn suppression_and_test_code_are_exempt() {
        let d = run("fn f(xs: &[f64]) -> f64 {\n\
             // allow(hdsj::unsafe_bounds): fixture exercises the raw path.\n\
             unsafe { *xs.as_ptr().add(1) }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t(xs: &[f64]) -> f64 {\n\
             unsafe { *xs.as_ptr().add(1) }\n\
             }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }
}

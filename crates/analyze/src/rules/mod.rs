//! The project rule set. One module per rule; `run_all` wires the
//! single-file rules, the cross-file context (error taxonomy, counter
//! registry), and the two-pass analysis (symbol table + call graph) that
//! the interprocedural rules consume.
//!
//! | rule | name | scope | default |
//! |------|-----------------------|----------------------------------|---------|
//! | R1   | `no_panic`            | per file, non-test               | deny    |
//! | R2   | `safety_comment`      | per file                         | deny    |
//! | R3   | `pin_pairing`         | per function                     | deny    |
//! | R4   | `lock_order`          | per function + call graph        | deny    |
//! | R5   | `error_taxonomy`      | workspace-wide                   | deny/warn |
//! | R6   | `counter_registry`    | per file + registry              | deny    |
//! | R7   | `atomic_ordering`     | per file + per-crate atomic table | deny   |
//! | R8   | `determinism`         | byte-deterministic modules        | deny   |
//! | R9   | `exec_only`           | per file, outside crates/exec     | deny   |
//! | R10  | `lifecycle_poll`      | algorithm/exec/storage loops + call graph | deny |
//! | R11  | `budget_charge`       | crates/storage + call graph       | deny   |
//! | R12  | `durability_order`    | storage::manifest sealing fns     | deny   |
//! | R13  | `unsafe_bounds`       | core::simd raw offsets + dataflow | deny/note |
//! | R14  | `target_feature_gate` | vendor intrinsics + call graph    | deny   |
//! | R15  | `unchecked_arith`     | core::simd offset arithmetic + dataflow | deny |
//!
//! Suppression: a comment containing `allow(hdsj::<rule>)` on the same
//! line or up to two lines above the flagged line silences that rule
//! there. Always pair the suppression with a justification. R15
//! additionally honours `// BOUND: <why>` for bounds the engine cannot
//! derive.

pub mod r10_lifecycle_poll;
pub mod r11_budget_charge;
pub mod r12_durability_order;
pub mod r13_unsafe_bounds;
pub mod r14_target_feature_gate;
pub mod r15_unchecked_arith;
pub mod r1_no_panic;
pub mod r2_safety_comment;
pub mod r3_pin_pairing;
pub mod r4_lock_order;
pub mod r5_error_taxonomy;
pub mod r6_counter_registry;
pub mod r7_atomic_ordering;
pub mod r8_determinism;
pub mod r9_exec_only;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::parse::FileModel;
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};

/// Pass-1 output shared by the interprocedural rules: the parsed files,
/// the workspace symbol table, and the conservative call graph. Built once
/// per run; rules must not mutate it.
pub struct Analysis<'a> {
    pub files: &'a [FileModel],
    pub symbols: SymbolTable,
    pub graph: CallGraph,
}

impl<'a> Analysis<'a> {
    /// Runs pass 1 over `files`.
    pub fn build(files: &'a [FileModel]) -> Analysis<'a> {
        let symbols = SymbolTable::build(files);
        let graph = CallGraph::build(files, &symbols);
        Analysis {
            files,
            symbols,
            graph,
        }
    }
}

/// Static metadata for one rule, for `--list-rules`, `--rules` filters,
/// and `explain <rule>`.
pub struct RuleInfo {
    /// Short id (`"r7"`), accepted by filters.
    pub id: &'static str,
    /// Rule name (`"atomic_ordering"`), also accepted by filters.
    pub name: &'static str,
    /// Worst level the rule emits.
    pub level: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Multi-line rationale and semantics, printed by `explain`.
    pub doc: &'static str,
    /// A fixture that trips the rule, printed by `explain`.
    pub example: &'static str,
}

/// Every rule the checker knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "r1",
        name: r1_no_panic::RULE,
        level: "deny",
        summary: "no unwrap/expect/panic!/unreachable!/todo! outside tests",
        doc: "The chaos suite injects disk faults everywhere, so every \
              library-code panic is a latent crash under fault injection. \
              Errors travel through the typed `Error` enum instead; test \
              code (`#[cfg(test)]`, `#[test]`) is exempt.",
        example: include_str!("../../tests/fixtures/r1_bad.rs"),
    },
    RuleInfo {
        id: "r2",
        name: r2_safety_comment::RULE,
        level: "deny",
        summary: "every `unsafe` block carries a SAFETY: comment within 3 lines",
        doc: "Each `unsafe` block must state the invariant that makes it \
              sound, in a `// SAFETY:` comment within the three lines \
              above it, so reviewers audit the claim rather than the \
              keyword.",
        example: include_str!("../../tests/fixtures/r2_bad.rs"),
    },
    RuleInfo {
        id: "r3",
        name: r3_pin_pairing::RULE,
        level: "deny",
        summary: "buffer-pool pins pair with RAII guards; no mem::forget/leak of guards",
        doc: "A leaked pin wedges a buffer-pool frame forever (it can \
              never be evicted). Pins must be held through the RAII \
              guard, and guards must never pass through `mem::forget` or \
              `Box::leak`.",
        example: include_str!("../../tests/fixtures/r3_bad.rs"),
    },
    RuleInfo {
        id: "r4",
        name: r4_lock_order::RULE,
        level: "deny",
        summary: "blocking locks are acquired in the declared global rank order, \
                  including across calls",
        doc: "Deadlock freedom comes from one global lock order: pool \
              (rank 0) < fault plan (1) < disks (2) < obs sinks (3). \
              Within a function, a held higher rank must not acquire a \
              strictly lower one. Across functions, a call made while \
              holding rank k is denied when the callee's transitive \
              acquire set (from the call graph) contains any rank ≤ k — \
              same-rank is denied across boundaries because it may be the \
              same mutex re-entered.",
        example: include_str!("../../tests/fixtures/r4_cycle.rs"),
    },
    RuleInfo {
        id: "r5",
        name: r5_error_taxonomy::RULE,
        level: "deny/warn",
        summary: "Error variants must be both constructed and matched somewhere",
        doc: "A variant nobody constructs is dead taxonomy; a variant \
              nobody matches is an error callers cannot handle. Both \
              drift the error contract, so the workspace Error enum is \
              checked for dead and unhandled variants.",
        example: include_str!("../../tests/fixtures/r5_bad.rs"),
    },
    RuleInfo {
        id: "r6",
        name: r6_counter_registry::RULE,
        level: "deny",
        summary: "literal counter/gauge names must appear in obs/src/names.rs",
        doc: "Metric names are a cross-cutting contract (dashboards, \
              tests, docs grep for them), so every literal counter/gauge \
              name must be declared in the obs registry before use.",
        example: include_str!("../../tests/fixtures/r6_bad.rs"),
    },
    RuleInfo {
        id: "r7",
        name: r7_atomic_ordering::RULE,
        level: "deny",
        summary: "atomics are declared in the per-crate table; relaxed ops on gate \
                  atomics carry an ORDERING: comment",
        doc: "Memory orderings are a contract between all code touching \
              one atomic, so each atomic is declared (per crate) and \
              classified Gate or Stat. Receivers are resolved through the \
              symbol table — `self.field`, `let`-bound aliases, typed \
              params, statics — so renaming a binding cannot dodge the \
              table, and Ordering-taking calls on receivers whose \
              resolved type is not atomic are skipped. Relaxed operations \
              on Gate atomics need an `// ORDERING:` justification within \
              3 lines.",
        example: include_str!("../../tests/fixtures/r7_bad.rs"),
    },
    RuleInfo {
        id: "r8",
        name: r8_determinism::RULE,
        level: "deny",
        summary: "no HashMap/HashSet, Instant::now, RandomState, or thread-identity \
                  branching in byte-deterministic modules",
        doc: "The byte-deterministic modules (kernels, bruteforce, msj, \
              sortmerge, the external sort, the lifecycle layer, the \
              manifest) promise identical output at every thread count. \
              Seeded hash iteration, wall-clock reads, and thread-identity \
              branching all braid nondeterminism into results, so they are \
              denied there; justified exemptions use the allow comment.",
        example: include_str!("../../tests/fixtures/r8_bad.rs"),
    },
    RuleInfo {
        id: "r9",
        name: r9_exec_only::RULE,
        level: "deny",
        summary: "no thread::spawn/scope/Builder outside crates/exec; use the pool",
        doc: "All threading flows through the exec pool so determinism, \
              schedule exploration, and shutdown have one choke point. \
              Raw `thread::spawn`/`scope`/`Builder` outside crates/exec \
              is denied.",
        example: include_str!("../../tests/fixtures/r9_bad.rs"),
    },
    RuleInfo {
        id: "r10",
        name: r10_lifecycle_poll::RULE,
        level: "deny",
        summary: "input-sized loops in algorithm/exec/storage crates must reach a \
                  lifecycle poll()",
        doc: "A loop whose trip count scales with the input and never \
              reaches `poll()` makes the query uncancelable: no cancel \
              flag, deadline, or budget can fire inside it. The rule \
              checks every outermost input-sized loop (literal and \
              ALL_CAPS-const bounds are exempt) in the algorithm, exec, \
              and storage-sort crates; a poll satisfies it either \
              directly in the body or transitively through any called \
              function (the buffer pool polls on every disk op, so \
              I/O-doing loops pass automatically).",
        example: include_str!("../../tests/fixtures/r10_bad.rs"),
    },
    RuleInfo {
        id: "r11",
        name: r11_budget_charge::RULE,
        level: "deny",
        summary: "storage functions reaching disk primitives must charge an I/O \
                  budget or be called only from charging wrappers",
        doc: "Every disk primitive (read_page/write_page, positioned \
              read/write, sync_all…) must count against the query's I/O \
              budget, or the budget is a lie. A function calling a \
              primitive passes when it charges (`charge_io`/\
              `charge_pages`) directly or transitively, or when every \
              non-test caller path is covered by a charging wrapper \
              (Disk-impl boundary methods `read_page`/`write_page`/\
              `sync` propagate the obligation to their callers — the \
              buffer pool charges at its `retrying` choke point).",
        example: include_str!("../../tests/fixtures/r11_bad.rs"),
    },
    RuleInfo {
        id: "r12",
        name: r12_durability_order::RULE,
        level: "deny",
        summary: "in storage::manifest, data fsync precedes the manifest append on \
                  sealing paths",
        doc: "The manifest is the commit record: a sealed file's record \
              must only become durable after the data it points at. In \
              storage::manifest functions that both fsync data (a \
              `sync`/`flush_all` on a StorageEngine-typed receiver) and \
              append manifest records (an `append` on a Manifest-typed \
              receiver), every append must come after the data fsync in \
              straight-line order — receivers are distinguished by their \
              resolved field types, not names.",
        example: include_str!("../../tests/fixtures/r12_bad.rs"),
    },
    RuleInfo {
        id: "r13",
        name: r13_unsafe_bounds::RULE,
        level: "deny/note",
        summary: "every core::simd raw-pointer offset is discharged against a \
                  dominating checked precondition",
        doc: "The SIMD layer holds the workspace's only `unsafe`. A SAFETY \
              comment claims a bound; this rule makes the claim checkable: \
              the intraprocedural dataflow pass propagates intervals and \
              symbolic bounds from `assert!`/`debug_assert!` conjuncts, \
              loop guards, and inverted early-return guards, and every \
              `as_ptr().add(e)` / `get_unchecked(e)` offset must be \
              *discharged* — proven `e < receiver.len()` by a dominating \
              fact. A discharged site is reported as a note carrying the \
              witness expression; an undischarged one is denied with the \
              missing bound spelled out.",
        example: include_str!("../../tests/fixtures/r13_bad.rs"),
    },
    RuleInfo {
        id: "r14",
        name: r14_target_feature_gate::RULE,
        level: "deny",
        summary: "non-baseline vendor intrinsics sit in matching #[target_feature] \
                  fns, entered only via the probed dispatch shims",
        doc: "Calling an AVX2 intrinsic on a CPU without AVX2 is undefined \
              behaviour regardless of bounds. Two obligations: every \
              `_mm256_*`/`_mm512_*` intrinsic must be inside a function \
              gated with the matching `#[target_feature(enable = …)]`, and \
              every such gated function may only be entered from another \
              function gated the same way, a `simd/mod.rs` dispatch shim \
              branching on the probed `level()`, or a probe wrapper that \
              asserts `*_available()` and is itself reached only from those \
              shims. Only precise call-graph edges, refined by module \
              plausibility, are trusted. Baseline features (sse2, neon) \
              are exempt.",
        example: include_str!("../../tests/fixtures/r14_bad.rs"),
    },
    RuleInfo {
        id: "r15",
        name: r15_unchecked_arith::RULE,
        level: "deny",
        summary: "integer arithmetic feeding a raw-pointer offset is provably \
                  non-overflowing or carries a BOUND: justification",
        doc: "A bounds check that wraps is no check: `at + k <= xs.len()` \
              passes for `at = usize::MAX - k + 1` in release mode. \
              Arithmetic that feeds a raw offset — in the offset \
              expression itself, in a `let` that flows into one, in an \
              argument to a same-file sink helper, or inside the assert \
              that guards one — must be provably non-overflowing under \
              the propagated intervals (an assert's own conjunct cannot \
              vouch for itself; earlier conjuncts can). Bounds the engine \
              cannot derive are recorded with `// BOUND: <why>` on or \
              just above the flagged line.",
        example: include_str!("../../tests/fixtures/r15_bad.rs"),
    },
];

/// Resolves a comma-separated filter (`"r7,r8"` or `"determinism"`) into a
/// set of rule names. Errors on unknown entries so typos fail loudly.
pub fn parse_filter(spec: &str) -> Result<BTreeSet<&'static str>, String> {
    let mut set = BTreeSet::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let hit = RULES
            .iter()
            .find(|r| r.id.eq_ignore_ascii_case(part) || r.name == part);
        match hit {
            Some(r) => {
                set.insert(r.name);
            }
            None => {
                let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
                return Err(format!(
                    "unknown rule {part:?}; known rules: {}",
                    known.join(", ")
                ));
            }
        }
    }
    if set.is_empty() {
        return Err("empty rule filter".to_string());
    }
    Ok(set)
}

/// Runs every rule over `files`. `registry_path_hint` names the obs
/// registry file (matched by suffix) among `files`; when absent, R6 is
/// skipped (fixture sets that don't care about counters).
pub fn run_all(files: &[FileModel], registry_suffix: &str) -> Vec<Diagnostic> {
    run_impl(files, registry_suffix, None)
}

/// Runs only the rules named in `filter` (rule names, from [`parse_filter`]).
pub fn run_filtered(
    files: &[FileModel],
    registry_suffix: &str,
    filter: &BTreeSet<&'static str>,
) -> Vec<Diagnostic> {
    run_impl(files, registry_suffix, Some(filter))
}

fn run_impl(
    files: &[FileModel],
    registry_suffix: &str,
    filter: Option<&BTreeSet<&'static str>>,
) -> Vec<Diagnostic> {
    let on = |name: &str| filter.is_none_or(|f| f.contains(name));
    let mut out = Vec::new();

    // Pass 1: the symbol table and call graph, when any consuming rule is
    // enabled.
    let analysis = [
        r4_lock_order::RULE,
        r7_atomic_ordering::RULE,
        r10_lifecycle_poll::RULE,
        r11_budget_charge::RULE,
        r12_durability_order::RULE,
        r14_target_feature_gate::RULE,
        r15_unchecked_arith::RULE,
    ]
    .iter()
    .any(|r| on(r))
    .then(|| Analysis::build(files));

    // Cross-file context.
    let registry: Option<BTreeSet<String>> = files
        .iter()
        .find(|f| f.path.to_string_lossy().ends_with(registry_suffix))
        .map(r6_counter_registry::load_registry);
    let mut variants = Vec::new();
    if on(r5_error_taxonomy::RULE) {
        for f in files {
            let v = r5_error_taxonomy::find_error_enum(f);
            if v.len() > variants.len() {
                variants = v; // the workspace Error enum (richest definition wins)
            }
        }
    }
    let mut tally: BTreeMap<String, r5_error_taxonomy::Usage> = variants
        .iter()
        .map(|v| (v.name.clone(), r5_error_taxonomy::Usage::default()))
        .collect();

    for (fi, f) in files.iter().enumerate() {
        if on(r1_no_panic::RULE) {
            r1_no_panic::check(f, &mut out);
        }
        if on(r2_safety_comment::RULE) {
            r2_safety_comment::check(f, &mut out);
        }
        if on(r3_pin_pairing::RULE) {
            r3_pin_pairing::check(f, &mut out);
        }
        if on(r6_counter_registry::RULE) {
            if let Some(reg) = &registry {
                r6_counter_registry::check(f, reg, &mut out);
            }
        }
        if on(r7_atomic_ordering::RULE) {
            if let Some(a) = &analysis {
                r7_atomic_ordering::check(a, fi, &mut out);
            }
        }
        if on(r8_determinism::RULE) {
            r8_determinism::check(f, &mut out);
        }
        if on(r9_exec_only::RULE) {
            r9_exec_only::check(f, &mut out);
        }
        if on(r13_unsafe_bounds::RULE) {
            r13_unsafe_bounds::check(f, &mut out);
        }
        if on(r5_error_taxonomy::RULE) {
            r5_error_taxonomy::scan_usage(f, &mut tally);
        }
    }
    // Pass 2, interprocedural: these rules walk functions via the symbol
    // table rather than per file.
    if let Some(a) = &analysis {
        if on(r4_lock_order::RULE) {
            r4_lock_order::check(a, &mut out);
        }
        if on(r10_lifecycle_poll::RULE) {
            r10_lifecycle_poll::check(a, &mut out);
        }
        if on(r11_budget_charge::RULE) {
            r11_budget_charge::check(a, &mut out);
        }
        if on(r12_durability_order::RULE) {
            r12_durability_order::check(a, &mut out);
        }
        if on(r14_target_feature_gate::RULE) {
            r14_target_feature_gate::check(a, &mut out);
        }
        if on(r15_unchecked_arith::RULE) {
            r15_unchecked_arith::check(a, &mut out);
        }
    }
    if on(r5_error_taxonomy::RULE) {
        r5_error_taxonomy::report(&variants, &tally, &mut out);
    }

    // Stable output: (path, line, rule) — rule as the tiebreak so files
    // whose line draws from several rules render identically regardless
    // of rule execution order.
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

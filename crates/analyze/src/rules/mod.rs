//! The project rule set. One module per rule; `run_all` wires the
//! single-file rules and the cross-file context (error taxonomy, counter
//! registry) together.
//!
//! | rule | name | scope | default |
//! |------|-----------------------|----------------------|---------|
//! | R1   | `no_panic`            | per file, non-test   | deny    |
//! | R2   | `safety_comment`      | per file             | deny    |
//! | R3   | `pin_pairing`         | per function         | deny    |
//! | R4   | `lock_order`          | per function         | deny    |
//! | R5   | `error_taxonomy`      | workspace-wide       | deny/warn |
//! | R6   | `counter_registry`    | per file + registry  | deny    |
//!
//! Suppression: a comment containing `allow(hdsj::<rule>)` on the same
//! line or up to two lines above the flagged line silences that rule
//! there. Always pair the suppression with a justification.

pub mod r1_no_panic;
pub mod r2_safety_comment;
pub mod r3_pin_pairing;
pub mod r4_lock_order;
pub mod r5_error_taxonomy;
pub mod r6_counter_registry;

use crate::diag::Diagnostic;
use crate::parse::FileModel;
use std::collections::{BTreeMap, BTreeSet};

/// Runs every rule over `files`. `registry_path_hint` names the obs
/// registry file (matched by suffix) among `files`; when absent, R6 is
/// skipped (fixture sets that don't care about counters).
pub fn run_all(files: &[FileModel], registry_suffix: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Cross-file context.
    let registry: Option<BTreeSet<String>> = files
        .iter()
        .find(|f| f.path.to_string_lossy().ends_with(registry_suffix))
        .map(r6_counter_registry::load_registry);
    let mut variants = Vec::new();
    for f in files {
        let v = r5_error_taxonomy::find_error_enum(f);
        if v.len() > variants.len() {
            variants = v; // the workspace Error enum (richest definition wins)
        }
    }
    let mut tally: BTreeMap<String, r5_error_taxonomy::Usage> = variants
        .iter()
        .map(|v| (v.name.clone(), r5_error_taxonomy::Usage::default()))
        .collect();

    for f in files {
        r1_no_panic::check(f, &mut out);
        r2_safety_comment::check(f, &mut out);
        r3_pin_pairing::check(f, &mut out);
        r4_lock_order::check(f, &mut out);
        if let Some(reg) = &registry {
            r6_counter_registry::check(f, reg, &mut out);
        }
        r5_error_taxonomy::scan_usage(f, &mut tally);
    }
    r5_error_taxonomy::report(&variants, &tally, &mut out);

    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

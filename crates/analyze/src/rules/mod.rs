//! The project rule set. One module per rule; `run_all` wires the
//! single-file rules and the cross-file context (error taxonomy, counter
//! registry) together.
//!
//! | rule | name | scope | default |
//! |------|-----------------------|----------------------------------|---------|
//! | R1   | `no_panic`            | per file, non-test               | deny    |
//! | R2   | `safety_comment`      | per file                         | deny    |
//! | R3   | `pin_pairing`         | per function                     | deny    |
//! | R4   | `lock_order`          | per function                     | deny    |
//! | R5   | `error_taxonomy`      | workspace-wide                   | deny/warn |
//! | R6   | `counter_registry`    | per file + registry              | deny    |
//! | R7   | `atomic_ordering`     | per file + per-crate atomic table | deny   |
//! | R8   | `determinism`         | byte-deterministic modules        | deny   |
//! | R9   | `exec_only`           | per file, outside crates/exec     | deny   |
//!
//! Suppression: a comment containing `allow(hdsj::<rule>)` on the same
//! line or up to two lines above the flagged line silences that rule
//! there. Always pair the suppression with a justification.

pub mod r1_no_panic;
pub mod r2_safety_comment;
pub mod r3_pin_pairing;
pub mod r4_lock_order;
pub mod r5_error_taxonomy;
pub mod r6_counter_registry;
pub mod r7_atomic_ordering;
pub mod r8_determinism;
pub mod r9_exec_only;

use crate::diag::Diagnostic;
use crate::parse::FileModel;
use std::collections::{BTreeMap, BTreeSet};

/// Static metadata for one rule, for `--list-rules` and `--rules` filters.
pub struct RuleInfo {
    /// Short id (`"r7"`), accepted by filters.
    pub id: &'static str,
    /// Rule name (`"atomic_ordering"`), also accepted by filters.
    pub name: &'static str,
    /// Worst level the rule emits.
    pub level: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule the checker knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "r1",
        name: r1_no_panic::RULE,
        level: "deny",
        summary: "no unwrap/expect/panic!/unreachable!/todo! outside tests",
    },
    RuleInfo {
        id: "r2",
        name: r2_safety_comment::RULE,
        level: "deny",
        summary: "every `unsafe` block carries a SAFETY: comment within 3 lines",
    },
    RuleInfo {
        id: "r3",
        name: r3_pin_pairing::RULE,
        level: "deny",
        summary: "buffer-pool pins pair with RAII guards; no mem::forget/leak of guards",
    },
    RuleInfo {
        id: "r4",
        name: r4_lock_order::RULE,
        level: "deny",
        summary: "blocking locks are acquired in the declared global rank order",
    },
    RuleInfo {
        id: "r5",
        name: r5_error_taxonomy::RULE,
        level: "deny/warn",
        summary: "Error variants must be both constructed and matched somewhere",
    },
    RuleInfo {
        id: "r6",
        name: r6_counter_registry::RULE,
        level: "deny",
        summary: "literal counter/gauge names must appear in obs/src/names.rs",
    },
    RuleInfo {
        id: "r7",
        name: r7_atomic_ordering::RULE,
        level: "deny",
        summary: "atomics are declared in the per-crate table; relaxed ops on gate \
                  atomics carry an ORDERING: comment",
    },
    RuleInfo {
        id: "r8",
        name: r8_determinism::RULE,
        level: "deny",
        summary: "no HashMap/HashSet, Instant::now, RandomState, or thread-identity \
                  branching in byte-deterministic modules",
    },
    RuleInfo {
        id: "r9",
        name: r9_exec_only::RULE,
        level: "deny",
        summary: "no thread::spawn/scope/Builder outside crates/exec; use the pool",
    },
];

/// Resolves a comma-separated filter (`"r7,r8"` or `"determinism"`) into a
/// set of rule names. Errors on unknown entries so typos fail loudly.
pub fn parse_filter(spec: &str) -> Result<BTreeSet<&'static str>, String> {
    let mut set = BTreeSet::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let hit = RULES
            .iter()
            .find(|r| r.id.eq_ignore_ascii_case(part) || r.name == part);
        match hit {
            Some(r) => {
                set.insert(r.name);
            }
            None => {
                let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
                return Err(format!(
                    "unknown rule {part:?}; known rules: {}",
                    known.join(", ")
                ));
            }
        }
    }
    if set.is_empty() {
        return Err("empty rule filter".to_string());
    }
    Ok(set)
}

/// Runs every rule over `files`. `registry_path_hint` names the obs
/// registry file (matched by suffix) among `files`; when absent, R6 is
/// skipped (fixture sets that don't care about counters).
pub fn run_all(files: &[FileModel], registry_suffix: &str) -> Vec<Diagnostic> {
    run_impl(files, registry_suffix, None)
}

/// Runs only the rules named in `filter` (rule names, from [`parse_filter`]).
pub fn run_filtered(
    files: &[FileModel],
    registry_suffix: &str,
    filter: &BTreeSet<&'static str>,
) -> Vec<Diagnostic> {
    run_impl(files, registry_suffix, Some(filter))
}

fn run_impl(
    files: &[FileModel],
    registry_suffix: &str,
    filter: Option<&BTreeSet<&'static str>>,
) -> Vec<Diagnostic> {
    let on = |name: &str| filter.is_none_or(|f| f.contains(name));
    let mut out = Vec::new();

    // Cross-file context.
    let registry: Option<BTreeSet<String>> = files
        .iter()
        .find(|f| f.path.to_string_lossy().ends_with(registry_suffix))
        .map(r6_counter_registry::load_registry);
    let mut variants = Vec::new();
    if on(r5_error_taxonomy::RULE) {
        for f in files {
            let v = r5_error_taxonomy::find_error_enum(f);
            if v.len() > variants.len() {
                variants = v; // the workspace Error enum (richest definition wins)
            }
        }
    }
    let mut tally: BTreeMap<String, r5_error_taxonomy::Usage> = variants
        .iter()
        .map(|v| (v.name.clone(), r5_error_taxonomy::Usage::default()))
        .collect();

    for f in files {
        if on(r1_no_panic::RULE) {
            r1_no_panic::check(f, &mut out);
        }
        if on(r2_safety_comment::RULE) {
            r2_safety_comment::check(f, &mut out);
        }
        if on(r3_pin_pairing::RULE) {
            r3_pin_pairing::check(f, &mut out);
        }
        if on(r4_lock_order::RULE) {
            r4_lock_order::check(f, &mut out);
        }
        if on(r6_counter_registry::RULE) {
            if let Some(reg) = &registry {
                r6_counter_registry::check(f, reg, &mut out);
            }
        }
        if on(r7_atomic_ordering::RULE) {
            r7_atomic_ordering::check(f, &mut out);
        }
        if on(r8_determinism::RULE) {
            r8_determinism::check(f, &mut out);
        }
        if on(r9_exec_only::RULE) {
            r9_exec_only::check(f, &mut out);
        }
        if on(r5_error_taxonomy::RULE) {
            r5_error_taxonomy::scan_usage(f, &mut tally);
        }
    }
    if on(r5_error_taxonomy::RULE) {
        r5_error_taxonomy::report(&variants, &tally, &mut out);
    }

    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

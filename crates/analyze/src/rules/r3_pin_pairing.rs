//! R3 `pin_pairing` — buffer-pool pin/unpin discipline.
//!
//! The pool's pin protocol is RAII: `BufferPool::fetch`/`alloc` increment
//! the frame pin count and hand back a `PinnedPage` guard whose `Drop`
//! decrements it. Two things can silently break the pairing, and both are
//! lexically visible:
//!
//! 1. **Leaking a guard** — `mem::forget`, `ManuallyDrop::new`, or
//!    `Box::leak` applied to a value obtained from `.fetch(…)`/`.alloc(…)`
//!    (directly or through a local binding) pins the frame forever; the
//!    pool can then never evict it and eventually reports exhaustion.
//! 2. **Manual pin arithmetic** — a function that calls `pins.fetch_add`
//!    without either wrapping the result in a `PinnedPage` guard or
//!    performing the matching `pins.fetch_sub` on every path.
//!
//! Check 2 is deliberately conservative: the increment must be paired *in
//! the same function* (by guard construction or explicit decrement), which
//! is exactly how `pool.rs` is written.

use crate::diag::{Diagnostic, Level};
use crate::parse::{FileModel, FnSpan};

pub const RULE: &str = "pin_pairing";

/// Functions that defeat RAII when applied to a pin guard.
const LEAKERS: &[&str] = &["forget", "leak"];

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    for f in &file.fns {
        check_fn(file, f, out);
    }
}

/// True when tokens `i..end` contain a call `.fetch(` or `.alloc(`.
fn contains_pin_call(file: &FileModel, start: usize, end: usize) -> bool {
    (start..end.min(file.tokens.len())).any(|i| {
        (file.tokens[i].is_ident("fetch") || file.tokens[i].is_ident("alloc"))
            && i > 0
            && file.tokens[i - 1].is_punct('.')
            && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
    })
}

fn check_fn(file: &FileModel, f: &FnSpan, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    // Pass 1: locals bound from a pinning call: `let [mut] g = …fetch(…)…;`
    let mut guards: Vec<String> = Vec::new();
    let mut i = f.body_start;
    while i < f.body_end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j) {
                if name_tok.kind == crate::lexer::TokenKind::Ident
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                {
                    // RHS runs to the `;` at the binding's depth.
                    let mut k = j + 2;
                    while k < f.body_end && !toks[k].is_punct(';') {
                        if toks[k].is_punct('(')
                            || toks[k].is_punct('{')
                            || toks[k].is_punct('[')
                        {
                            k = file.skip_group(k);
                        } else {
                            k += 1;
                        }
                    }
                    if contains_pin_call(file, j + 2, k) {
                        guards.push(name_tok.text.clone());
                    }
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Pass 2: leak sites. `forget(…)`, `…::leak(…)`, `ManuallyDrop::new(…)`
    // whose argument list mentions a guard binding or a pinning call.
    let mut has_fetch_add = false;
    let mut has_fetch_sub = false;
    let mut has_guard_ctor = false;
    let mut i = f.body_start;
    while i < f.body_end {
        let t = &toks[i];
        if t.is_ident("PinnedPage") {
            has_guard_ctor = true;
        }
        if t.is_ident("fetch_add")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks
                .get(i.saturating_sub(2))
                .is_some_and(|p| p.is_ident("pins"))
        {
            has_fetch_add = true;
        }
        if t.is_ident("fetch_sub")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks
                .get(i.saturating_sub(2))
                .is_some_and(|p| p.is_ident("pins"))
        {
            has_fetch_sub = true;
        }
        let is_leaker = LEAKERS.contains(&t.text.as_str())
            || (t.is_ident("new")
                && i >= 2
                && toks[i - 1].is_punct(':')
                && toks
                    .get(i.saturating_sub(3))
                    .is_some_and(|p| p.is_ident("ManuallyDrop")));
        if is_leaker && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let args_end = file.skip_group(i + 1);
            let leaks_guard = contains_pin_call(file, i + 2, args_end)
                || (i + 2..args_end).any(|k| guards.iter().any(|g| toks[k].is_ident(g)));
            let line = t.line;
            if leaks_guard && !file.is_test_line(line) && !file.suppressed(RULE, line) {
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "pinned page guard leaked via `{}` in `{}`: the frame's pin \
                         count never returns to zero, so it can never be evicted",
                        t.text, f.name
                    ),
                });
            }
            i = args_end;
            continue;
        }
        i += 1;
    }

    if has_fetch_add && !(has_fetch_sub || has_guard_ctor) {
        let line = f.line;
        if !file.is_test_line(line) && !file.suppressed(RULE, line) {
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line,
                message: format!(
                    "`{}` increments `pins` but neither constructs a `PinnedPage` \
                     guard nor calls the matching `pins.fetch_sub`",
                    f.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("t.rs"), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn forgetting_a_fetched_guard_is_flagged() {
        let d =
            run("fn f(pool: &BufferPool) { let g = pool.fetch(id)?; std::mem::forget(g); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("forget"));
    }

    #[test]
    fn forgetting_a_direct_call_is_flagged() {
        let d = run("fn f(pool: &BufferPool) { std::mem::forget(pool.alloc()?); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn normal_guard_use_is_clean() {
        let d = run("fn f(pool: &BufferPool) { let g = pool.fetch(id)?; g.read(); drop(g); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unpaired_manual_pin_is_flagged() {
        let d = run("fn pin_only(frame: &Frame) { frame.pins.fetch_add(1, Relaxed); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn guard_construction_pairs_the_increment() {
        let d = run(
            "fn fetch(&self) -> PinnedPage { frame.pins.fetch_add(1, Relaxed); \
             PinnedPage { frame } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn forgetting_something_else_is_fine() {
        let d = run("fn f(x: Vec<u8>) { std::mem::forget(x); }");
        assert!(d.is_empty(), "{d:?}");
    }
}

//! R4 `lock_order` — mutex acquisitions follow the declared global order,
//! within a function *and* across calls.
//!
//! The workspace's blocking locks are few and named consistently; deadlock
//! freedom comes from acquiring them in one global order:
//!
//! | rank | lock                            | owner                     |
//! |------|---------------------------------|---------------------------|
//! | 0    | `inner`                         | `BufferPool` (pool state) |
//! | 1    | `state`                         | `FaultPlan` schedule      |
//! | 2    | `pages`, `io_lock`, `num_pages` | disks                     |
//! | 3    | `out`, `events`, `counters`, `GLOBAL` | obs sinks / registry |
//!
//! "Pool before stats, never the reverse": the pool lock (rank 0) may be
//! held while reaching the disk or the obs registry, but code that holds a
//! sink or registry lock must not reach back into the pool.
//!
//! Two checks share one walk over each function body:
//!
//! * **Lexical** (unchanged from the per-file pass): a `let g = x.lock()`
//!   binding *holds* `x`'s rank until its scope closes (or `drop(g)`); any
//!   later acquisition of a strictly lower rank inside that scope is a
//!   violation. Un-bound acquisitions are temporaries — checked but
//!   releasing immediately. Same-rank nesting is allowed here because the
//!   named locks are demonstrably distinct mutexes.
//! * **Interprocedural** (the call-graph upgrade): a call made while
//!   holding rank k is denied when any candidate callee's *transitive
//!   acquire set* contains a lock ranked strictly below k — or the very
//!   lock the caller holds (self-deadlock on a non-reentrant `Mutex`;
//!   distinct same-rank locks remain legal nesting, as in the lexical
//!   check). Acquire sets are a monotone fixed point over the call
//!   graph's precisely-resolved edges, so recursion cycles terminate
//!   and are fully covered.
//!
//! The `debug-invariants` feature provides the complementary runtime
//! check for receivers the lexical resolution cannot see.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;
use crate::rules::Analysis;
use crate::symbols::FnSym;

pub const RULE: &str = "lock_order";

/// Receiver-name → rank. Names not listed are ignored.
pub const LOCK_ORDER: &[(&str, u8)] = &[
    ("inner", 0),
    ("state", 1),
    ("pages", 2),
    ("io_lock", 2),
    ("num_pages", 2),
    ("out", 3),
    ("events", 3),
    ("counters", 3),
    ("GLOBAL", 3),
];

fn rank_of(name: &str) -> Option<u8> {
    LOCK_ORDER.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

struct Held {
    rank: u8,
    name: String,
    /// Binding name (`let g = …`), used by `drop(g)` release.
    binding: Option<String>,
    /// Brace depth at the binding; popped when the scope closes.
    depth: u32,
}

/// One direct acquisition inside a function body. The lock's rank is
/// recovered from [`LOCK_ORDER`] by name when the transitive sets are
/// built.
#[derive(Clone, Debug)]
struct Acquire {
    name: String,
}

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    // Direct acquire sets, one per function, feeding the transitive check.
    let direct: Vec<Vec<Acquire>> = a
        .symbols
        .fns
        .iter()
        .map(|f| direct_acquires(&a.files[f.file], f))
        .collect();
    let trans = transitive_acquires(a, &direct);
    for (fid, f) in a.symbols.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        check_fn(a, fid, f, &trans, out);
    }
}

/// Every ranked `<recv>.lock(` in `f`'s body.
fn direct_acquires(file: &FileModel, f: &FnSym) -> Vec<Acquire> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in f.body_start..f.body_end.min(toks.len()) {
        let t = &toks[i];
        let is_lock = t.is_ident("lock")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_lock {
            continue;
        }
        let recv = &toks[i - 2];
        if rank_of(&recv.text).is_some() {
            out.push(Acquire {
                name: recv.text.clone(),
            });
        }
    }
    out
}

/// Index of `name` in [`LOCK_ORDER`].
fn lock_idx(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|(n, _)| *n == name)
}

/// Per-function transitive acquire sets — one bit per named lock, plus a
/// witness fn for each bit — as a monotone fixed point over *precisely
/// resolved* call edges only. The keep-every-method fallback edges are
/// excluded here: R4 denies on reachability, and the fallback's
/// over-approximation (every `.store(…)`, `.push(…)` edging to every
/// same-named method in the workspace) would condemn nearly every call
/// made under a lock. Precise edges keep the check honest; the
/// `debug-invariants` runtime layer covers what resolution cannot.
struct TransAcquires {
    /// `mask[f]` — bit `i` set when `f` transitively acquires
    /// `LOCK_ORDER[i]`.
    mask: Vec<u16>,
    /// `owner[f][i]` — the function whose *direct* acquire set bit `i`,
    /// for the "via `…`" witness in diagnostics.
    owner: Vec<Vec<usize>>,
}

fn transitive_acquires(a: &Analysis, direct: &[Vec<Acquire>]) -> TransAcquires {
    let n = direct.len();
    let nlocks = LOCK_ORDER.len();
    let mut t = TransAcquires {
        mask: vec![0u16; n],
        owner: vec![vec![0usize; nlocks]; n],
    };
    for (f, acqs) in direct.iter().enumerate() {
        for acq in acqs {
            if let Some(i) = lock_idx(&acq.name) {
                t.mask[f] |= 1 << i;
                t.owner[f][i] = f;
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..n {
            for site in &a.graph.calls[f] {
                if !site.resolved {
                    continue;
                }
                for &g in &site.targets {
                    let new = t.mask[g] & !t.mask[f];
                    if new == 0 {
                        continue;
                    }
                    for i in 0..nlocks {
                        if new & (1 << i) != 0 {
                            t.owner[f][i] = t.owner[g][i];
                        }
                    }
                    t.mask[f] |= new;
                    changed = true;
                }
            }
        }
    }
    t
}

fn check_fn(
    a: &Analysis,
    fid: usize,
    f: &FnSym,
    trans: &TransAcquires,
    out: &mut Vec<Diagnostic>,
) {
    let file = &a.files[f.file];
    let toks = &file.tokens;
    let sites = &a.graph.calls[fid];
    let mut next_site = 0usize;
    let mut held: Vec<Held> = Vec::new();
    for i in f.body_start..f.body_end.min(toks.len()) {
        // Interprocedural: a resolved call made while holding a rank.
        while next_site < sites.len() && sites[next_site].tok < i {
            next_site += 1;
        }
        if next_site < sites.len() && sites[next_site].tok == i {
            let site = &sites[next_site];
            next_site += 1;
            if !held.is_empty()
                && site.resolved
                && !site.targets.is_empty()
                && !file.is_test_line(site.line)
                && !file.suppressed(RULE, site.line)
            {
                check_call(a, f, trans, site, &held, out);
            }
        }
        let t = &toks[i];
        // Scope close: release bindings from deeper scopes.
        if t.is_punct('}') {
            let d = file.depth[i];
            held.retain(|h| h.depth < d);
            continue;
        }
        // Explicit release: drop(g).
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(arg) = toks.get(i + 2) {
                held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
            }
            continue;
        }
        // An acquisition: `<recv> . lock ( )`.
        let is_lock = t.is_ident("lock")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_lock {
            continue;
        }
        let Some(recv) = toks.get(i.wrapping_sub(2)) else {
            continue;
        };
        let Some(rank) = rank_of(&recv.text) else {
            continue;
        };
        let line = t.line;
        if let Some(worst) = held.iter().filter(|h| h.rank > rank).max_by_key(|h| h.rank) {
            if !file.is_test_line(line) && !file.suppressed(RULE, line) {
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "lock-order violation in `{}`: acquiring `{}` (rank {rank}) \
                         while holding `{}` (rank {}); declared order is pool < fault \
                         < disk < obs",
                        f.name, recv.text, worst.name, worst.rank
                    ),
                });
            }
        }
        // Held only when let-bound: scan back over the receiver chain
        // (`a . b . c . lock`) to the chain head, then expect `let name =`.
        let mut head = i - 2; // the receiver ident
        while head >= 2
            && toks[head - 1].is_punct('.')
            && toks[head - 2].kind == crate::lexer::TokenKind::Ident
        {
            head -= 2;
        }
        let binding = if head >= 2
            && toks[head - 1].is_punct('=')
            && toks[head - 2].kind == crate::lexer::TokenKind::Ident
        {
            let name_idx = head - 2;
            let is_let = (0..name_idx).rev().take(2).any(|k| toks[k].is_ident("let"));
            is_let.then(|| toks[name_idx].text.clone())
        } else {
            None
        };
        if let Some(b) = binding {
            held.push(Held {
                rank,
                name: recv.text.clone(),
                binding: Some(b),
                depth: file.depth[i],
            });
        }
    }
}

/// Denies `site` when some candidate callee transitively acquires a lock
/// ranked strictly below one the caller holds, or re-acquires the *same
/// named lock* (self-deadlock on a non-reentrant `Mutex`). Distinct locks
/// of equal rank are legal nesting, exactly as in the lexical check.
fn check_call(
    a: &Analysis,
    f: &FnSym,
    trans: &TransAcquires,
    site: &crate::callgraph::CallSite,
    held: &[Held],
    out: &mut Vec<Diagnostic>,
) {
    let file = &a.files[f.file];
    for &g in &site.targets {
        let mask = trans.mask[g];
        if mask == 0 {
            continue;
        }
        // The worst violation: highest held rank first, then the
        // lowest-ranked acquired lock as the reported witness.
        let mut hit: Option<(&Held, usize)> = None;
        for h in held {
            for (i, &(lname, lrank)) in LOCK_ORDER.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                if lrank < h.rank || lname == h.name {
                    let better = hit.is_none_or(|(ph, pi)| {
                        h.rank > ph.rank || (h.rank == ph.rank && lrank < LOCK_ORDER[pi].1)
                    });
                    if better {
                        hit = Some((h, i));
                    }
                }
            }
        }
        let Some((h, i)) = hit else {
            continue;
        };
        let (lname, lrank) = LOCK_ORDER[i];
        let owner = trans.owner[g][i];
        let callee = &a.symbols.fns[g];
        let via = if owner == g {
            String::new()
        } else {
            format!(" (via `{}`)", a.symbols.fns[owner].name)
        };
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line: site.line,
            message: format!(
                "lock-order violation in `{}`: calling `{}` while holding `{}` \
                 (rank {}); `{}` transitively acquires `{}` (rank {lrank}){via} — \
                 declared order is pool < fault < disk < obs",
                f.name, site.name, h.name, h.rank, callee.name, lname
            ),
        });
        // One diagnostic per call site keeps the output readable even when
        // several candidate impls all violate.
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Analysis;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![FileModel::parse(PathBuf::from("t.rs"), src)];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn reverse_order_is_flagged() {
        let d =
            run("fn bad(&self) { let g = self.counters.lock(); let p = self.inner.lock(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("rank 0"));
    }

    #[test]
    fn declared_order_is_clean() {
        let d = run("fn good(&self) { let p = self.inner.lock(); let s = self.pages.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_the_rank() {
        let d = run(
            "fn ok(&self) { let s = self.counters.lock(); drop(s); let p = self.inner.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_end_releases_the_rank() {
        let d = run(
            "fn ok(&self) { { let s = self.counters.lock(); } let p = self.inner.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporaries_do_not_hold() {
        let d = run("fn ok(&self) { self.counters.lock().len(); let p = self.inner.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_rank_nesting_is_allowed() {
        let d =
            run("fn ok(&self) { let a = self.io_lock.lock(); let b = self.num_pages.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_receivers_are_ignored() {
        let d =
            run("fn ok(&self) { let a = self.whatever.lock(); let p = self.inner.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cross_function_violation_is_caught() {
        let d = run(
            "fn top(pool: &Pool) { let s = pool.counters.lock(); enter(pool); drop(s); }\n\
             fn enter(pool: &Pool) { let g = pool.inner.lock(); drop(g); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("calling `enter`"), "{d:?}");
        assert!(d[0].message.contains("rank 0"), "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn downward_rank_calls_are_clean() {
        // Holding the pool lock (rank 0) while the callee reaches the obs
        // sink (rank 3) follows the declared order.
        let d = run(
            "fn top(pool: &Pool) { let g = pool.inner.lock(); note(pool); drop(g); }\n\
             fn note(pool: &Pool) { let s = pool.counters.lock(); drop(s); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cycles_terminate_with_the_right_diagnostic() {
        let d = run(
            "fn top(pool: &Pool) { let s = pool.counters.lock(); enter(pool, 0); drop(s); }\n\
             fn enter(pool: &Pool, depth: usize) { reenter(pool, depth); }\n\
             fn reenter(pool: &Pool, depth: usize) {\n\
                 let g = pool.inner.lock();\n\
                 drop(g);\n\
                 enter(pool, depth + 1);\n\
             }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("calling `enter`"), "{d:?}");
        assert!(d[0].message.contains("via `reenter`"), "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn same_rank_across_calls_is_denied() {
        // The callee may be locking the very mutex the caller holds.
        let d = run(
            "fn top(pool: &Pool) { let g = pool.inner.lock(); again(pool); drop(g); }\n\
             fn again(pool: &Pool) { let g = pool.inner.lock(); drop(g); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("rank 0"), "{d:?}");
    }

    #[test]
    fn suppressed_call_sites_are_honoured() {
        let d = run("fn top(pool: &Pool) {\n\
                 let s = pool.counters.lock();\n\
                 // allow(hdsj::lock_order): enter only reads, lock is uncontended in tests.\n\
                 enter(pool);\n\
                 drop(s);\n\
             }\n\
             fn enter(pool: &Pool) { let g = pool.inner.lock(); drop(g); }\n");
        assert!(d.is_empty(), "{d:?}");
    }
}

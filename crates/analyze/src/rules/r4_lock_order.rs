//! R4 `lock_order` — mutex acquisitions follow the declared global order.
//!
//! The workspace's blocking locks are few and named consistently; deadlock
//! freedom comes from acquiring them in one global order:
//!
//! | rank | lock                            | owner                     |
//! |------|---------------------------------|---------------------------|
//! | 0    | `inner`                         | `BufferPool` (pool state) |
//! | 1    | `state`                         | `FaultPlan` schedule      |
//! | 2    | `pages`, `io_lock`, `num_pages` | disks                     |
//! | 3    | `out`, `events`, `counters`, `GLOBAL` | obs sinks / registry |
//!
//! "Pool before stats, never the reverse": the pool lock (rank 0) may be
//! held while reaching the disk or the obs registry, but code that holds a
//! sink or registry lock must not reach back into the pool.
//!
//! The check is lexical and per-function: a `let g = x.lock()` binding
//! *holds* `x`'s rank until its scope closes (or `drop(g)`); any later
//! acquisition of a strictly lower rank inside that scope is a violation.
//! Un-bound acquisitions (`x.lock().field`) are temporaries — checked
//! against currently held ranks but releasing immediately. The
//! `debug-invariants` feature provides the complementary runtime check
//! across function boundaries.

use crate::diag::{Diagnostic, Level};
use crate::parse::{FileModel, FnSpan};

pub const RULE: &str = "lock_order";

/// Receiver-name → rank. Names not listed are ignored.
pub const LOCK_ORDER: &[(&str, u8)] = &[
    ("inner", 0),
    ("state", 1),
    ("pages", 2),
    ("io_lock", 2),
    ("num_pages", 2),
    ("out", 3),
    ("events", 3),
    ("counters", 3),
    ("GLOBAL", 3),
];

fn rank_of(name: &str) -> Option<u8> {
    LOCK_ORDER.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

struct Held {
    rank: u8,
    name: String,
    /// Binding name (`let g = …`), used by `drop(g)` release.
    binding: Option<String>,
    /// Brace depth at the binding; popped when the scope closes.
    depth: u32,
}

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    for f in &file.fns {
        check_fn(file, f, out);
    }
}

fn check_fn(file: &FileModel, f: &FnSpan, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut held: Vec<Held> = Vec::new();
    for i in f.body_start..f.body_end.min(toks.len()) {
        let t = &toks[i];
        // Scope close: release bindings from deeper scopes.
        if t.is_punct('}') {
            let d = file.depth[i];
            held.retain(|h| h.depth < d);
            continue;
        }
        // Explicit release: drop(g).
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(arg) = toks.get(i + 2) {
                held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
            }
            continue;
        }
        // An acquisition: `<recv> . lock ( )`.
        let is_lock = t.is_ident("lock")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_lock {
            continue;
        }
        let Some(recv) = toks.get(i.wrapping_sub(2)) else {
            continue;
        };
        let Some(rank) = rank_of(&recv.text) else {
            continue;
        };
        let line = t.line;
        if let Some(worst) = held.iter().filter(|h| h.rank > rank).max_by_key(|h| h.rank) {
            if !file.is_test_line(line) && !file.suppressed(RULE, line) {
                out.push(Diagnostic {
                    rule: RULE,
                    level: Level::Deny,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "lock-order violation in `{}`: acquiring `{}` (rank {rank}) \
                         while holding `{}` (rank {}); declared order is pool < fault \
                         < disk < obs",
                        f.name, recv.text, worst.name, worst.rank
                    ),
                });
            }
        }
        // Held only when let-bound: scan back over the receiver chain
        // (`a . b . c . lock`) to the chain head, then expect `let name =`.
        let mut head = i - 2; // the receiver ident
        while head >= 2
            && toks[head - 1].is_punct('.')
            && toks[head - 2].kind == crate::lexer::TokenKind::Ident
        {
            head -= 2;
        }
        let binding = if head >= 2
            && toks[head - 1].is_punct('=')
            && toks[head - 2].kind == crate::lexer::TokenKind::Ident
        {
            let name_idx = head - 2;
            let is_let = (0..name_idx).rev().take(2).any(|k| toks[k].is_ident("let"));
            is_let.then(|| toks[name_idx].text.clone())
        } else {
            None
        };
        if let Some(b) = binding {
            held.push(Held {
                rank,
                name: recv.text.clone(),
                binding: Some(b),
                depth: file.depth[i],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from("t.rs"), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn reverse_order_is_flagged() {
        let d =
            run("fn bad(&self) { let g = self.counters.lock(); let p = self.inner.lock(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("rank 0"));
    }

    #[test]
    fn declared_order_is_clean() {
        let d = run("fn good(&self) { let p = self.inner.lock(); let s = self.pages.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_the_rank() {
        let d = run(
            "fn ok(&self) { let s = self.counters.lock(); drop(s); let p = self.inner.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_end_releases_the_rank() {
        let d = run(
            "fn ok(&self) { { let s = self.counters.lock(); } let p = self.inner.lock(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporaries_do_not_hold() {
        let d = run("fn ok(&self) { self.counters.lock().len(); let p = self.inner.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_rank_nesting_is_allowed() {
        let d =
            run("fn ok(&self) { let a = self.io_lock.lock(); let b = self.num_pages.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_receivers_are_ignored() {
        let d =
            run("fn ok(&self) { let a = self.whatever.lock(); let p = self.inner.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }
}

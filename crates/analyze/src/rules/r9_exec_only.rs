//! R9 `exec_only` — all parallelism flows through the `hdsj-exec` pool.
//!
//! Direct `std::thread::spawn`, `std::thread::scope`, or
//! `std::thread::Builder` outside `crates/exec` is denied: the pool is
//! where panic containment (`catch_unwind` → `Error::Internal`),
//! chunk-ordered determinism, obs counters/spans, and the
//! debug-schedules yield points live, and a stray hand-rolled thread
//! bypasses every one of those guarantees. PR 4 retired the three ad-hoc
//! threading sites (msj refine, bruteforce, external sort); this rule
//! keeps new ones from appearing.
//!
//! Deliberately *not* denied: `thread::sleep` (backoff), `thread::yield_now`
//! (spin hints), `thread::panicking` (drop-path guards), and
//! `thread::available_parallelism` (sizing) — none of them create a thread.
//! Test code is exempt, as everywhere: tests may build scaffolding
//! (channels draining in a scope, etc.) without routing through the pool.

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;

pub const RULE: &str = "exec_only";

/// `thread::<tail>` forms that create threads.
const SPAWNING: &[&str] = &["spawn", "scope", "Builder"];

pub fn check(file: &FileModel, out: &mut Vec<Diagnostic>) {
    let p = file.path.to_string_lossy();
    if p.contains("crates/exec/") {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("thread") {
            continue;
        }
        let tail = toks
            .get(i + 1)
            .filter(|t| t.is_punct(':'))
            .and_then(|_| toks.get(i + 2))
            .filter(|t| t.is_punct(':'))
            .and_then(|_| toks.get(i + 3));
        let Some(tail) = tail else { continue };
        let Some(&what) = SPAWNING.iter().find(|s| tail.is_ident(s)) else {
            continue;
        };
        let line = t.line;
        if file.is_test_line(line) || file.suppressed(RULE, line) {
            continue;
        }
        out.push(Diagnostic {
            rule: RULE,
            level: Level::Deny,
            path: file.path.clone(),
            line,
            message: format!(
                "`thread::{what}` outside crates/exec: route parallelism through the \
                 hdsj-exec pool (map_chunks / map_reduce / producer_consumers) so panic \
                 containment, determinism, and instrumentation apply"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse(PathBuf::from(path), src);
        let mut out = Vec::new();
        check(&m, &mut out);
        out
    }

    #[test]
    fn spawn_outside_exec_is_flagged() {
        let d = run(
            "crates/storage/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("hdsj-exec pool"), "{d:?}");
    }

    #[test]
    fn scope_outside_exec_is_flagged() {
        let d = run(
            "crates/obs/src/x.rs",
            "fn f() { std::thread::scope(|s| {}); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn exec_crate_itself_is_exempt() {
        let d = run(
            "crates/exec/src/lib.rs",
            "fn f() { std::thread::scope(|s| {}); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_spawning_thread_helpers_are_clean() {
        let d = run(
            "crates/storage/src/x.rs",
            "fn f() { std::thread::sleep(d); std::thread::yield_now(); if std::thread::panicking() {} }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(
            "crates/storage/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::scope(|s| {}); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_is_honoured() {
        let d = run(
            "crates/storage/src/x.rs",
            "fn f() {\n    // allow(hdsj::exec_only): detached watchdog, must outlive the pool.\n    std::thread::spawn(|| {});\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

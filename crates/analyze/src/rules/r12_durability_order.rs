//! R12 `durability_order` — in the manifest module, data must be durable
//! before the manifest record that promises it.
//!
//! The checkpoint protocol (DESIGN.md §14) is: flush dirty pages →
//! fsync the data file → append the checkpoint record → fsync the
//! manifest. Replay trusts the record: if the record reaches disk
//! before the data it describes, a crash in the window replays to a
//! checkpoint whose pages never made it — silent corruption, the exact
//! failure the write-ahead manifest exists to prevent. The rule checks
//! the *straight-line order* of calls inside each sealing function:
//!
//! * **Scope** — `crates/storage/src/manifest` only. That module owns
//!   the protocol; elsewhere `append`/`sync` mean other things.
//! * **Sealing function** — any non-test fn whose body contains both a
//!   data-sync call (`.sync()`/`.flush_all()` on a receiver resolving
//!   to the storage engine) and a manifest append (`.append(` on a
//!   receiver resolving to a `Manifest`).
//! * **Violation** — a manifest append whose call site precedes the
//!   first data-sync in token order. Token order is a conservative
//!   stand-in for program order: reordering across an `if` would move
//!   the append textually too.
//!
//! Functions that only append (no data to seal — e.g. recording a run
//! file that was synced by the sort) are out of scope by construction;
//! deliberate unsealed appends carry
//! `// allow(hdsj::durability_order): <reason>`.

use crate::diag::{Diagnostic, Level};
use crate::rules::Analysis;
use crate::symbols::resolve_receiver;

pub const RULE: &str = "durability_order";

const SCOPE: &str = "storage/src/manifest";

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for (fid, f) in a.symbols.fns.iter().enumerate() {
        let file = &a.files[f.file];
        if f.is_test || !file.path.to_string_lossy().contains(SCOPE) {
            continue;
        }
        let mut appends: Vec<&crate::callgraph::CallSite> = Vec::new();
        let mut first_data_sync: Option<usize> = None;
        for s in &a.graph.calls[fid] {
            match s.name.as_str() {
                "append" if receiver_is(a, f, s, "Manifest") => appends.push(s),
                "flush_all" => {
                    first_data_sync.get_or_insert(s.tok);
                }
                "sync" if receiver_is(a, f, s, "StorageEngine") => {
                    first_data_sync.get_or_insert(s.tok);
                }
                _ => {}
            }
        }
        let Some(sync_tok) = first_data_sync else {
            continue; // not a sealing function
        };
        for s in appends {
            if s.tok >= sync_tok {
                continue;
            }
            if file.is_test_line(s.line) || file.suppressed(RULE, s.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line: s.line,
                message: format!(
                    "`{}` appends a manifest record before the data fsync: a crash in \
                     between replays to a checkpoint whose pages never reached disk; \
                     fsync data first, or justify with \
                     `// allow(hdsj::durability_order): <reason>`",
                    f.name
                ),
            });
        }
    }
}

/// Does the method call site's receiver resolve to a type mentioning
/// `ty`? Unresolved receivers answer `false` — R12 only fires on calls
/// it can attribute, so helper `append`s on vectors stay out of scope.
fn receiver_is(
    a: &Analysis,
    f: &crate::symbols::FnSym,
    s: &crate::callgraph::CallSite,
    ty: &str,
) -> bool {
    let file = &a.files[f.file];
    // `recv . name (` — the receiver chain ends two tokens before the name.
    if s.tok < 2 || !file.tokens[s.tok - 1].is_punct('.') {
        return false;
    }
    resolve_receiver(&a.symbols, file, f, s.tok - 2).ty_mentions(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::rules::Analysis;
    use std::path::PathBuf;

    const PRELUDE: &str = "struct StorageEngine { x: u32 }\n\
                           struct Manifest { y: u32 }\n\
                           struct Ckpt { engine: StorageEngine, manifest: Manifest }\n";

    fn run(body: &str) -> Vec<Diagnostic> {
        let src = format!("{PRELUDE}{body}");
        let files = vec![FileModel::parse(
            PathBuf::from("crates/storage/src/manifest/x.rs"),
            &src,
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn append_before_data_sync_is_flagged() {
        let d = run("impl Ckpt {\n\
                 fn seal(&mut self, rec: &[u8]) {\n\
                     self.manifest.append(rec);\n\
                     self.engine.sync();\n\
                 }\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`seal`"), "{d:?}");
    }

    #[test]
    fn the_correct_protocol_order_is_clean() {
        let d = run("impl Ckpt {\n\
                 fn seal(&mut self, rec: &[u8]) {\n\
                     self.engine.flush_all();\n\
                     self.engine.sync();\n\
                     self.manifest.append(rec);\n\
                     self.manifest.sync();\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flush_all_counts_as_the_data_sync() {
        let d = run("impl Ckpt {\n\
                 fn seal(&mut self, rec: &[u8]) {\n\
                     self.manifest.append(rec);\n\
                     self.engine.flush_all();\n\
                 }\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn append_only_functions_are_not_sealing() {
        let d = run("impl Ckpt {\n\
                 fn note(&mut self, rec: &[u8]) {\n\
                     self.manifest.append(rec);\n\
                     self.manifest.sync();\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn vec_appends_do_not_count() {
        let d = run("impl Ckpt {\n\
                 fn seal(&mut self, recs: &mut Vec<u8>, rec: u8) {\n\
                     recs.append(&mut vec![rec]);\n\
                     self.engine.sync();\n\
                     self.manifest.append(&[rec]);\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_comment_is_honoured() {
        let d = run("impl Ckpt {\n\
                 fn seal(&mut self, rec: &[u8]) {\n\
                     // allow(hdsj::durability_order): intent record, invalidated on replay.\n\
                     self.manifest.append(rec);\n\
                     self.engine.sync();\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn outside_the_manifest_module_is_ignored() {
        let src = format!(
            "{PRELUDE}impl Ckpt {{ fn seal(&mut self, rec: &[u8]) {{ self.manifest.append(rec); self.engine.sync(); }} }}"
        );
        let files = vec![FileModel::parse(
            PathBuf::from("crates/storage/src/pool.rs"),
            &src,
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}

//! R10 `lifecycle_poll` — input-sized loops in the algorithm, exec, and
//! storage-sort crates must reach a lifecycle `poll()`.
//!
//! PR 7's cancellation contract is cooperative: a cancel flag, deadline,
//! or exhausted budget only fires at a `poll()` site. A loop whose trip
//! count scales with the input and never reaches one makes the query
//! uncancelable for the duration of that loop — exactly the bug class a
//! long-running join server cannot afford. The rule:
//!
//! * **Scope** — the algorithm crates (bruteforce, msj, sortmerge, ekdb,
//!   grid, rtree), the exec pool, and the external sort's resume path.
//!   The kernels are deliberately out of scope: their loops are
//!   per-dimension (d ≤ a few hundred), bounded by the point layout, not
//!   the dataset.
//! * **Input-sized** — a `for`/`while` whose header names any
//!   identifier that is not ALL_CAPS (a tuning const) — `for p in
//!   points`, `while i < n`, `while let Some(x) = heap.pop()` — plus
//!   every bare `loop`. Literal ranges (`0..4`) and const bounds
//!   (`0..SUPER_BLOCK`) are exempt. Only *outermost* input-sized loops
//!   are checked: an inner loop is covered by whatever poll its outer
//!   loop reaches, and a poll anywhere in the outer body (including
//!   inside the inner loop) satisfies the outer loop.
//! * **Reachable poll** — the loop body contains a direct `poll(…)`
//!   call, or calls some function whose transitive closure (call graph)
//!   contains one. The buffer pool polls on every disk op via
//!   `retrying`, so loops that do I/O through the pool pass without
//!   annotation.
//!
//! Loops that are genuinely bounded (spins on a condvar-free handshake,
//! retry loops bounded by a constant) carry
//! `// allow(hdsj::lifecycle_poll): <why this loop is not input-sized>`.

use crate::diag::{Diagnostic, Level};
use crate::rules::Analysis;
use crate::symbols::FnSym;

pub const RULE: &str = "lifecycle_poll";

/// Path fragments selecting the crates whose loops must stay cancelable.
const SCOPE: &[&str] = &[
    "crates/bruteforce/src",
    "crates/msj/src",
    "crates/sortmerge/src",
    "crates/ekdb/src",
    "crates/grid/src",
    "crates/rtree/src",
    "crates/exec/src",
    "crates/storage/src/sort",
];

/// Header identifiers that never make a loop input-sized.
const HEADER_KEYWORDS: &[&str] = &[
    "in", "let", "mut", "ref", "as", "Some", "None", "Ok", "Err", "usize", "u8", "u16", "u32",
    "u64", "i8", "i16", "i32", "i64", "f32", "f64", "true", "false",
];

struct Loop {
    /// Token index of the `for`/`while`/`loop` keyword.
    kw: usize,
    line: u32,
    /// Token index of the body's `{`.
    body_open: usize,
    /// One past the body's `}`.
    body_end: usize,
    input_sized: bool,
}

pub fn check(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for (fid, f) in a.symbols.fns.iter().enumerate() {
        let file = &a.files[f.file];
        let path = file.path.to_string_lossy();
        if !SCOPE.iter().any(|frag| path.contains(frag)) {
            continue;
        }
        if f.is_test {
            continue;
        }
        let loops = find_loops(a, f);
        for (li, l) in loops.iter().enumerate() {
            if !l.input_sized {
                continue;
            }
            // A fn's span contains any fn nested inside it; attribute each
            // loop to the *innermost* enclosing fn so it is checked (and
            // reported) exactly once.
            let innermost = a
                .symbols
                .fns
                .iter()
                .enumerate()
                .filter(|(_, g)| g.file == f.file && g.body_start <= l.kw && l.kw < g.body_end)
                .max_by_key(|(_, g)| g.body_start)
                .map(|(gi, _)| gi);
            if innermost != Some(fid) {
                continue;
            }
            // Outermost only: skip loops nested inside another loop of
            // this function (any kind — a counted outer loop still bounds
            // its inner loops' cadence through its own check).
            let nested = loops
                .iter()
                .enumerate()
                .any(|(lj, o)| lj != li && o.body_open < l.kw && l.body_end <= o.body_end);
            if nested {
                continue;
            }
            if file.is_test_line(l.line) || file.suppressed(RULE, l.line) {
                continue;
            }
            if body_reaches_poll(a, fid, l) {
                continue;
            }
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: file.path.clone(),
                line: l.line,
                message: format!(
                    "input-sized loop in `{}` never reaches a lifecycle `poll()`: \
                     cancellation, deadlines, and budgets cannot fire here; poll at a \
                     stride or justify with `// allow(hdsj::lifecycle_poll): <reason>`",
                    f.name
                ),
            });
        }
    }
}

/// All `for`/`while`/`loop` constructs in `f`'s body.
fn find_loops(a: &Analysis, f: &FnSym) -> Vec<Loop> {
    let file = &a.files[f.file];
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = f.body_start + 1;
    let end = f.body_end.saturating_sub(1).min(toks.len());
    while i < end {
        let t = &toks[i];
        let kind = if t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
            t.text.as_str()
        } else {
            i += 1;
            continue;
        };
        // `loop` as a method/field name (`x.loop`) can't occur (keyword),
        // but `for` also appears in `impl Trait for T` — not inside fn
        // bodies we scan. Find the body `{`.
        let mut j = i + 1;
        while j < end && !toks[j].is_punct('{') {
            // A `;` before any `{` means this wasn't a loop header after
            // all (defensive; shouldn't happen with real code).
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if j >= end || !toks[j].is_punct('{') {
            i += 1;
            continue;
        }
        let body_end = file.skip_group(j);
        let input_sized = match kind {
            "loop" => true,
            _ => header_is_input_sized(file, kind, i + 1, j),
        };
        out.push(Loop {
            kw: i,
            line: t.line,
            body_open: j,
            body_end,
            input_sized,
        });
        i += 1; // keep scanning inside the body for nested loops
    }
    out
}

/// True when the loop header (tokens `start..open`) mentions a non-const
/// data identifier — the loop's trip count depends on runtime data.
fn header_is_input_sized(
    file: &crate::parse::FileModel,
    kind: &str,
    start: usize,
    open: usize,
) -> bool {
    let toks = &file.tokens;
    // In a `for pat in expr` header, pattern idents are fresh bindings —
    // only the bound expression after `in` matters.
    let mut begin = start;
    if kind == "for" {
        if let Some(j) = (start..open).find(|&j| toks[j].is_ident("in")) {
            begin = j + 1;
        }
    }
    for j in begin..open {
        let t = &toks[j];
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if HEADER_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `.method(` idents describe *how* to iterate, not over what.
        if j > 0 && toks[j - 1].is_punct('.') {
            continue;
        }
        // ALL_CAPS names are tuning constants, not input.
        if t.text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            continue;
        }
        return true;
    }
    false
}

/// True when the loop body contains a direct `poll(` call or calls a
/// function whose transitive closure contains one.
fn body_reaches_poll(a: &Analysis, fid: usize, l: &Loop) -> bool {
    let f = &a.symbols.fns[fid];
    let file = &a.files[f.file];
    let toks = &file.tokens;
    for i in l.body_open..l.body_end.min(toks.len()) {
        if toks[i].is_ident("poll") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
    }
    let polls = |g: usize| a.graph.calls_name(g, "poll");
    a.graph.calls[fid]
        .iter()
        .filter(|s| l.body_open < s.tok && s.tok < l.body_end)
        .flat_map(|s| s.targets.iter())
        .any(|&g| a.graph.reaches(g, polls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::rules::Analysis;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![FileModel::parse(PathBuf::from("crates/msj/src/x.rs"), src)];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        out
    }

    #[test]
    fn unpolled_input_loop_is_flagged() {
        let d = run(
            "fn scan(points: &[P]) { for p in points { touch(p); } }\nfn touch(_p: &P) {}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("poll"), "{d:?}");
    }

    #[test]
    fn direct_poll_satisfies() {
        let d = run("fn scan(lc: &LifecycleCtx, points: &[P]) {\n\
                 for (i, p) in points.iter().enumerate() {\n\
                     if i % 64 == 0 { let _ = lc.poll(); }\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transitive_poll_through_a_callee_satisfies() {
        let d = run(
            "fn scan(lc: &LifecycleCtx, points: &[P]) { for p in points { tick(lc); } }\n\
             fn tick(lc: &LifecycleCtx) { let _ = lc.poll(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn literal_and_const_bounds_are_exempt() {
        let d = run(
            "fn fixed() { for i in 0..4 { let _ = i; } for j in 0..SUPER_BLOCK { let _ = j; } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bare_loop_is_input_sized() {
        let d = run("fn spin(q: &Q) { loop { if q.ready() { break; } } }\n");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn inner_loops_are_covered_by_the_outer_check() {
        // Only the outer loop is checked; the poll inside the inner loop
        // satisfies it.
        let d = run("fn nest(lc: &LifecycleCtx, points: &[P]) {\n\
                 for p in points {\n\
                     for q in points {\n\
                         let _ = lc.poll();\n\
                     }\n\
                 }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_comment_with_reason_is_honoured() {
        let d = run("fn bounded(points: &[P]) {\n\
                 // allow(hdsj::lifecycle_poll): at most MAX_RETRIES spins, not input-sized.\n\
                 for p in points { let _ = p; }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let files = vec![FileModel::parse(
            PathBuf::from("crates/obs/src/x.rs"),
            "fn scan(points: &[P]) { for p in points { let _ = p; } }",
        )];
        let a = Analysis::build(&files);
        let mut out = Vec::new();
        check(&a, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let d = run("#[cfg(test)]\nmod t { fn scan(points: &[P]) { for p in points { let _ = p; } } }\n");
        assert!(d.is_empty(), "{d:?}");
    }
}

//! R5 `error_taxonomy` — no dead error taxonomy.
//!
//! Every variant of the workspace `Error` enum must be *constructed*
//! somewhere (otherwise it is dead weight in every `match`) and *matched*
//! somewhere other than a wildcard arm (otherwise callers cannot react to
//! it — the CLI exit-code mapping and `variant_name` are the canonical
//! consumers). A variant failing either leg gets a diagnostic at its
//! definition site: construction-without-match is deny (errors the caller
//! cannot distinguish), match-without-construction is warn (dead variant).

use crate::diag::{Diagnostic, Level};
use crate::parse::FileModel;

pub const RULE: &str = "error_taxonomy";

/// A variant of the workspace `Error` enum, located at its definition.
#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    pub file: std::path::PathBuf,
    pub line: u32,
}

/// Extracts the variants of `enum Error { … }` from `file`, if it defines
/// one.
pub fn find_error_enum(file: &FileModel) -> Vec<Variant> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident("Error") {
            // Body: first `{` after the name (skips generics, none here).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let end = file.skip_group(j);
            let body_depth = file.depth[j] + 1;
            let mut k = j + 1;
            while k < end.saturating_sub(1) {
                let t = &toks[k];
                // A variant name: ident at body depth, preceded by `{` or `,`
                // (attributes skipped below), starting uppercase.
                if t.kind == crate::lexer::TokenKind::Ident
                    && file.depth[k] == body_depth
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    && (toks[k - 1].is_punct('{')
                        || toks[k - 1].is_punct(',')
                        || toks[k - 1].is_punct(']'))
                {
                    out.push(Variant {
                        name: t.text.clone(),
                        file: file.path.clone(),
                        line: t.line,
                    });
                    // Skip any payload.
                    if toks
                        .get(k + 1)
                        .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
                    {
                        k = file.skip_group(k + 1);
                        continue;
                    }
                }
                if t.is_punct('#') && toks.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                    k = file.skip_group(k + 1);
                    continue;
                }
                k += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Per-variant usage counts accumulated across files.
#[derive(Debug, Default)]
pub struct Usage {
    pub constructed: usize,
    pub matched: usize,
}

/// Scans `file` for `Error::<Variant>` occurrences and classifies each as
/// pattern (match arm, `|` alternative, `if let`/`matches!` destructure)
/// or construction.
pub fn scan_usage(file: &FileModel, tally: &mut std::collections::BTreeMap<String, Usage>) {
    let toks = &file.tokens;
    // Precompute matches!(…) ranges: everything inside is pattern context
    // after the first comma at call depth.
    let mut matches_ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("matches")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            matches_ranges.push((i + 2, file.skip_group(i + 2)));
        }
    }
    let mut i = 0;
    while i + 3 < toks.len() {
        let hit = toks[i].is_ident("Error")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == crate::lexer::TokenKind::Ident;
        if !hit {
            i += 1;
            continue;
        }
        let variant = toks[i + 3].text.clone();
        let Some(usage) = tally.get_mut(&variant) else {
            i += 4;
            continue;
        };
        // Position after the optional payload group.
        let mut after = i + 4;
        if toks
            .get(after)
            .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
        {
            after = file.skip_group(after);
        }
        let in_matches = matches_ranges.iter().any(|&(a, b)| i > a && i < b);
        let arrow = toks.get(after).is_some_and(|t| t.is_punct('='))
            && toks.get(after + 1).is_some_and(|t| t.is_punct('>'));
        let alternative = toks.get(after).is_some_and(|t| t.is_punct('|'));
        let destructure = toks.get(after).is_some_and(|t| t.is_punct('='))
            && !toks
                .get(after + 1)
                .is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
        if in_matches || arrow || alternative || destructure {
            usage.matched += 1;
        } else {
            usage.constructed += 1;
        }
        i = after;
    }
}

/// Emits diagnostics for variants failing either leg. `variants` is the
/// definition list; `tally` the cross-file usage counts.
pub fn report(
    variants: &[Variant],
    tally: &std::collections::BTreeMap<String, Usage>,
    out: &mut Vec<Diagnostic>,
) {
    for v in variants {
        let Some(u) = tally.get(&v.name) else {
            continue;
        };
        if u.constructed > 0 && u.matched == 0 {
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Deny,
                path: v.file.clone(),
                line: v.line,
                message: format!(
                    "`Error::{}` is constructed but never matched: callers cannot \
                     distinguish it (add it to the exit-code map / `variant_name`)",
                    v.name
                ),
            });
        }
        if u.constructed == 0 {
            out.push(Diagnostic {
                rule: RULE,
                level: Level::Warn,
                path: v.file.clone(),
                line: v.line,
                message: format!(
                    "`Error::{}` is never constructed: dead taxonomy weight",
                    v.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn run(srcs: &[&str]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| FileModel::parse(PathBuf::from(format!("f{i}.rs")), s))
            .collect();
        let mut variants = Vec::new();
        for m in &models {
            let v = find_error_enum(m);
            if !v.is_empty() {
                variants = v;
            }
        }
        let mut tally: BTreeMap<String, Usage> = variants
            .iter()
            .map(|v| (v.name.clone(), Usage::default()))
            .collect();
        for m in &models {
            scan_usage(m, &mut tally);
        }
        let mut out = Vec::new();
        report(&variants, &tally, &mut out);
        out
    }

    const ENUM: &str = "pub enum Error { Io(String), Weird(String) }";

    #[test]
    fn constructed_but_unmatched_is_denied() {
        let d = run(&[
            ENUM,
            "fn f() -> Error { Error::Weird(\"x\".into()) }\n\
            fn g(e: &Error) { match e { Error::Io(_) => {}, _ => {} } }\n\
            fn h() { let _ = Error::Io(String::new()); }",
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Weird"));
        assert_eq!(d[0].level, Level::Deny);
    }

    #[test]
    fn matched_and_constructed_is_clean() {
        let d = run(&[
            ENUM,
            "fn f() { let e = Error::Io(String::new()); let w = Error::Weird(\"w\".into());\n\
            match e { Error::Io(_) | Error::Weird(_) => {} } }",
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn matches_macro_counts_as_matched() {
        let d = run(&[
            ENUM,
            "fn f(e: &Error) -> bool { let _ = Error::Io(String::new());\n\
            let _ = Error::Weird(\"w\".into());\n\
            matches!(e, Error::Io(_) | Error::Weird(_)) }",
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn never_constructed_is_a_warning() {
        let d = run(&[
            ENUM,
            "fn g(e: &Error) { match e { Error::Io(_) => {}, Error::Weird(_) => {} } }",
        ]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.level == Level::Warn));
    }

    #[test]
    fn if_let_counts_as_matched() {
        let d = run(&[ENUM, "fn f(e: Error) { let _ = Error::Io(String::new()); let _ = Error::Weird(\"w\".into());\n\
            if let Error::Io(m) = e { use_it(m); }\n\
            if let Error::Weird(m) = other { use_it(m); } }"]);
        assert!(d.is_empty(), "{d:?}");
    }
}

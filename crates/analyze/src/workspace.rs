//! Workspace discovery: which files the checker walks.
//!
//! The walk covers library and binary code — `crates/*/src/**/*.rs` plus
//! the root package's `src/**/*.rs`. It deliberately excludes:
//!
//! * `tests/`, `benches/`, `examples/` — panicking is idiomatic there and
//!   the in-file `#[cfg(test)]` exemption handles unit tests;
//! * `vendor/` — std-only shims for external crates, not project code;
//! * `target/` and hidden directories.

use crate::parse::FileModel;
use std::io;
use std::path::{Path, PathBuf};

/// Suffix identifying the obs metric-name registry among walked files.
pub const REGISTRY_SUFFIX: &str = "obs/src/names.rs";

/// The set of parsed source files under analysis.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<FileModel>,
}

impl Workspace {
    /// Walks `root` (a cargo workspace checkout) and parses every in-scope
    /// source file. Paths in diagnostics are reported relative to `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources: Vec<PathBuf> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let src = entry?.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut sources)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, &mut sources)?;
        }
        sources.sort();

        let mut files = Vec::with_capacity(sources.len());
        for path in sources {
            let text = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(FileModel::parse(rel, &text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Builds a workspace from explicit files (fixture tests).
    pub fn from_sources(sources: &[(PathBuf, String)]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: sources
                .iter()
                .map(|(p, s)| FileModel::parse(p.clone(), s))
                .collect(),
        }
    }

    /// Runs the full rule set.
    pub fn check(&self) -> Vec<crate::diag::Diagnostic> {
        crate::rules::run_all(&self.files, REGISTRY_SUFFIX)
    }

    /// Runs only the rules named in `filter` (see [`crate::rules::parse_filter`]).
    pub fn check_filtered(
        &self,
        filter: &std::collections::BTreeSet<&'static str>,
    ) -> Vec<crate::diag::Diagnostic> {
        crate::rules::run_filtered(&self.files, REGISTRY_SUFFIX, filter)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

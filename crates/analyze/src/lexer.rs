//! A hand-rolled Rust lexer, sufficient for the project's lint rules.
//!
//! This is deliberately not a full Rust lexer: it only needs to be precise
//! about the things that would otherwise produce false positives in a
//! text-level scan — comments (line, nested block, doc), string literals
//! (plain, raw with any number of `#`s, byte strings), char literals vs.
//! lifetimes, and identifiers. Everything else (numbers, punctuation)
//! is tokenized loosely; the rules never need to distinguish `1e-3` from
//! `0xFF`.
//!
//! Comments are kept out of the main token stream and returned separately:
//! the structural rules scan code tokens without tripping over doc text,
//! while the comment list drives `// SAFETY:` detection (R2) and
//! `allow(hdsj::<rule>)` suppressions.

/// Kind of a code token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, with `r#` kept).
    Ident,
    /// `'a`, `'static`, … (but not char literals).
    Lifetime,
    /// Numeric literal, loosely consumed (suffixes and exponents included).
    Number,
    /// String literal of any flavour; `text` keeps the full source form.
    Str,
    /// Char literal, e.g. `'x'` or `'\n'`.
    Char,
    /// One punctuation character (multi-char operators arrive as
    /// consecutive tokens; the rules inspect adjacency where they care).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A comment (line or block, doc or plain) with its line extent.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    /// Line of the first character.
    pub line: u32,
    /// Line of the last character (differs from `line` for block comments).
    pub end_line: u32,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// tolerated: the remainder of the file becomes the final token, which is
/// the forgiving behaviour a diagnostics tool wants.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' => self.raw_or_ident(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        self.out.tokens.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line: self.line,
        });
    }

    fn count_newlines(&mut self, start: usize, end: usize) {
        self.line += self.bytes[start..end]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.pos].to_string(),
            line: self.line,
            end_line: self.line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.pos].to_string(),
            line: start_line,
            end_line: self.line,
        });
    }

    /// `r` / `b` may start a raw string (`r"`, `r#"`, `br#"`…), a byte
    /// string (`b"`), a raw identifier (`r#name`), or a plain identifier.
    fn raw_or_ident(&mut self) {
        let mut probe = self.pos + 1;
        if self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'r') {
            probe += 1;
        }
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while self.bytes.get(probe + hashes) == Some(&b'#') {
            hashes += 1;
        }
        match self.bytes.get(probe + hashes) {
            Some(b'"') if probe > self.pos || hashes > 0 || self.bytes[self.pos] == b'b' => {
                // br"", r"", r#""#, b"" (probe==pos+1, hashes==0, b prefix).
                if self.bytes[self.pos] == b'b' && probe == self.pos + 1 && hashes == 0 {
                    // b"...": plain byte string.
                    self.pos += 1;
                    self.string();
                    return;
                }
                self.raw_string(probe + hashes, hashes);
            }
            _ if self.bytes[self.pos] == b'r' && hashes == 1 && probe == self.pos + 1 => {
                // r#ident: raw identifier — or r#"…"# handled above.
                if self
                    .bytes
                    .get(probe + 1)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    self.pos += 2; // skip r#
                    let start = self.pos;
                    self.consume_ident_body();
                    self.push(TokenKind::Ident, start, self.pos);
                } else {
                    self.ident();
                }
            }
            _ => self.ident(),
        }
    }

    /// Raw string whose opening quote is at `quote`, closed by `"` plus
    /// `hashes` `#`s.
    fn raw_string(&mut self, quote: usize, hashes: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos = quote + 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut h = 0usize;
                while h < hashes && self.bytes.get(self.pos + 1 + h) == Some(&b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.pos += 1 + hashes;
                    self.count_newlines(start, self.pos);
                    self.out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: self.src[start..self.pos].to_string(),
                        line: start_line,
                    });
                    return;
                }
            }
            self.pos += 1;
        }
        self.count_newlines(start, self.pos);
        self.out.tokens.push(Token {
            kind: TokenKind::Str,
            text: self.src[start..self.pos].to_string(),
            line: start_line,
        });
    }

    fn string(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Str,
            text: self.src[start..self.pos.min(self.bytes.len())].to_string(),
            line: start_line,
        });
    }

    /// `'` starts a lifetime when followed by an identifier that is *not*
    /// closed by another `'` (that would be a char like `'a'`).
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let next = self.peek(1);
        let is_lifetime = next.is_some_and(|b| b == b'_' || b.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.pos += 1;
            let id_start = self.pos;
            self.consume_ident_body();
            self.out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: self.src[start..self.pos].to_string(),
                line: self.line,
            });
            let _ = id_start;
            return;
        }
        // Char literal: handle escapes; scan to the closing quote.
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
            // \u{...} spans until the brace closes.
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'\''
                && self.bytes[self.pos] != b'\n'
            {
                self.pos += 1;
            }
        } else if self.pos < self.bytes.len() {
            // One (possibly multi-byte) character.
            let rest = &self.src[self.pos..];
            if let Some(c) = rest.chars().next() {
                self.pos += c.len_utf8();
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        self.push(TokenKind::Char, start, self.pos);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Exponent sign: 1e-3 / 1E+7.
                if (b == b'e' || b == b'E')
                    && start != self.pos
                    && !self.src[start..self.pos].starts_with("0x")
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                {
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
            } else if b == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && !self.src[start..self.pos].contains('.')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, self.pos);
    }

    fn ident(&mut self) {
        let start = self.pos;
        self.consume_ident_body();
        if self.pos == start {
            // Non-ASCII punctuation or stray byte: consume one char.
            let rest = &self.src[start..];
            let step = rest.chars().next().map_or(1, |c| c.len_utf8());
            self.pos += step;
            self.push(TokenKind::Punct, start, self.pos);
            return;
        }
        self.push(TokenKind::Ident, start, self.pos);
    }

    fn consume_ident_body(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let names = idents(r#"let x = "unwrap() panic!"; y.unwrap();"#);
        assert_eq!(names, ["let", "x", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"he said "panic!""#; s.len()"###);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("panic!"));
        assert_eq!(
            idents(r###"let s = r#"x"#; s.len()"###),
            ["let", "s", "s", "len"]
        );
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "a /* one /* two */ still */ b\nc // unwrap()\nd";
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c", "d"]
        );
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.tokens[3].line, 3, "line counting survives comments");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn byte_strings() {
        let l = lex(r##"let b = b"panic!"; let rb = br#"x"#;"##);
        let strs = l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let names = idents("let x = 1.max(2); let y = 1.5e-3; let z = 0xFFu64;");
        assert!(names.contains(&"max".to_string()));
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// calls .unwrap() on x\nfn f() {}");
        assert_eq!(idents("/// calls .unwrap() on x\nfn f() {}"), ["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }
}

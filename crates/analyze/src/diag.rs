//! Diagnostics: rule id, level, location, message, and rendering.

use std::fmt;
use std::path::PathBuf;

/// Severity of a diagnostic. `Deny` diagnostics fail the check (non-zero
/// exit); `Warn` diagnostics are reported but do not; `Note` records a
/// positive result (e.g. an R13 discharged bounds proof) and never fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Note,
    Warn,
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Note => write!(f, "note"),
            Level::Warn => write!(f, "warn"),
            Level::Deny => write!(f, "deny"),
        }
    }
}

/// One finding, addressed `file:line` like rustc output.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Short rule name, e.g. `no_panic`; rendered as `hdsj::no_panic`,
    /// matching the `allow(hdsj::no_panic)` suppression syntax.
    pub rule: &'static str,
    pub level: Level,
    pub path: PathBuf,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[hdsj::{}] {}",
            self.path.display(),
            self.line,
            self.level,
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// Renders as a single JSON object (used by `--format json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"hdsj::{}\",\"level\":\"{}\",\"file\":{:?},\"line\":{},\"message\":{:?}}}",
            self.rule,
            self.level,
            self.path.display().to_string(),
            self.line,
            self.message
        )
    }
}

//! R14 fixture: an AVX2 intrinsic outside any gated fn, and a gated
//! kernel entered from plain code instead of the dispatch shims.
use std::arch::x86_64::{__m256d, _mm256_add_pd, _mm256_setzero_pd};

pub fn ungated() -> __m256d {
    // SAFETY: lane-wise zeroing touches no memory.
    unsafe { _mm256_setzero_pd() }
}

#[target_feature(enable = "avx2")]
fn lanes_kernel(v: __m256d) -> __m256d {
    // SAFETY: lane-wise arithmetic touches no memory.
    unsafe { _mm256_add_pd(v, v) }
}

pub fn sneaky(v: __m256d) -> __m256d {
    // SAFETY: in-register only — but the AVX2 probe is never consulted.
    unsafe { lanes_kernel(v) }
}

// Fixture: R5 passes — every variant is constructed and matched.
pub enum Error {
    Io(String),
    Lost(String),
}

pub fn make_io() -> Error {
    Error::Io("disk".to_string())
}

pub fn make_lost() -> Error {
    Error::Lost("gone".to_string())
}

pub fn classify(e: &Error) -> i32 {
    match e {
        Error::Io(_) => 6,
        Error::Lost(_) => 4,
    }
}

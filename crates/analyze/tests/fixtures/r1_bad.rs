// Fixture: R1 `no_panic` violations — lines 3, 7, 12, 14.
pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(r: Result<u32, String>) -> u32 {
    r.expect("must hold")
}

pub fn third(flag: bool) {
    if flag {
        panic!("boom");
    } else {
        unreachable!();
    }
}

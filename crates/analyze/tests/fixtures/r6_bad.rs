// Fixture: R6 `counter_registry` — typo'd metric name at line 3.
fn record(t: &Tracer) {
    t.counter("pool.hit").add(1);
}

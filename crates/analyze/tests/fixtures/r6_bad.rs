// Fixture: R6 `counter_registry` — typo'd metric names at lines 3-4.
fn record(t: &Tracer) {
    t.counter("pool.hit").add(1);
    t.histogram("pool.read_latency").record(9);
}

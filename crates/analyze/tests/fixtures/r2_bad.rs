// Fixture: R2 `safety_comment` — undocumented unsafe at line 3.
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

//! R9 fixture: allowed thread uses — non-spawning helpers, test code, and
//! a justified suppression.

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
    std::thread::yield_now();
}

pub fn watchdog() {
    // allow(hdsj::exec_only): detached watchdog must outlive any pool scope.
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaffolding_threads_are_fine() {
        std::thread::scope(|_s| {});
    }
}

// Fixture: R4 `lock_order` — rank 0 acquired under rank 3 (line 4).
fn backwards(pool: &Pool) {
    let sink = pool.counters.lock();
    let inner = pool.inner.lock();
    drop((sink, inner));
}

// Fixture: R3 `pin_pairing` — leaked guard (line 4), unpaired pin (line 7).
pub fn leak(pool: &BufferPool, id: PageId) {
    let guard = pool.fetch(id);
    std::mem::forget(guard);
}

pub fn pin_only(frame: &Frame) {
    frame.pins.fetch_add(1, Ordering::Relaxed);
}

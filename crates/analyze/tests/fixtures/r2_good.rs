// Fixture: R2 passes — SAFETY comment in reach, marker impls exempt.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live byte.
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

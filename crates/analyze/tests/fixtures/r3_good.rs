// Fixture: R3 passes — RAII guard use, and a paired manual pin.
pub fn read_page(pool: &BufferPool, id: PageId) -> u64 {
    let guard = pool.fetch(id);
    guard.read().get_u64(0)
}

pub fn pin(frame: Arc<Frame>) -> PinnedPage {
    frame.pins.fetch_add(1, Ordering::Relaxed);
    PinnedPage { frame }
}

pub fn forget_unrelated(bytes: Vec<u8>) {
    std::mem::forget(bytes);
}

// Fixture: R12 `durability_order` — the full protocol order (flush, data
// fsync, append, manifest fsync), plus an append-only function that seals
// no data and is out of scope by construction.
struct StorageEngine {
    dirty: u32,
}

struct Manifest {
    len: u32,
}

struct R12gCkpt {
    engine: StorageEngine,
    manifest: Manifest,
}

impl R12gCkpt {
    fn r12g_seal(&mut self, rec: &[u8]) {
        self.engine.flush_all();
        self.engine.sync();
        self.manifest.append(rec);
        self.manifest.sync();
    }

    fn r12g_note(&mut self, rec: &[u8]) {
        self.manifest.append(rec);
        self.manifest.sync();
    }
}

//! R9 fixture: hand-rolled threading outside crates/exec.

pub fn fanout() {
    let handle = std::thread::spawn(|| 1 + 1);
    std::thread::scope(|_s| {});
    let _ = handle.join();
}

// Fixture: R11 `budget_charge` — the driver charges once at the top; the
// raw helper below it stays unmetered by design.
struct R11Pool {
    file: File,
}

impl R11Pool {
    fn r11g_driver(&mut self, lc: &LifecycleCtx, buf: &[u8]) {
        lc.charge_io(1);
        self.r11g_write(buf);
    }

    fn r11g_write(&mut self, buf: &[u8]) {
        self.file.write_all(buf);
    }
}

//! R13 fixture: raw-pointer offsets whose bound is claimed but never
//! checked — no dominating assert, or an assert on the wrong variable.
use std::arch::x86_64::{__m128d, _mm_loadu_pd};

pub fn raw_no_bound(xs: &[f64], at: usize) -> __m128d {
    // SAFETY: claimed in prose only — exactly what R13 rejects.
    unsafe { _mm_loadu_pd(xs.as_ptr().add(at)) }
}

pub fn wrong_variable(xs: &[f64], at: usize, other: usize) -> f64 {
    debug_assert!(xs.len() >= 2 && other <= xs.len() - 2);
    // SAFETY: the assert above bounds `other`, not `at`.
    unsafe { *xs.as_ptr().add(at) }
}

// Fixture: R10 `lifecycle_poll` — strided and transitive polls, const
// bounds, and a justified bounded spin.
fn r10g_scan(lc: &LifecycleCtx, points: &[Point]) -> usize {
    let mut n = 0;
    for (i, p) in points.iter().enumerate() {
        if i % 64 == 0 {
            let _ = lc.poll();
        }
        n += r10g_weigh(p);
    }
    n
}

fn r10g_drain(lc: &LifecycleCtx, points: &[Point]) {
    for p in points {
        r10g_tick(lc, p);
    }
}

fn r10g_tick(lc: &LifecycleCtx, _p: &Point) {
    let _ = lc.poll();
}

fn r10g_warmup() -> usize {
    let mut n = 0;
    for i in 0..SUPER_BLOCK {
        n += i;
    }
    n
}

fn r10g_handshake(q: &Queue) {
    // allow(hdsj::lifecycle_poll): bounded by the pool's two-phase close.
    loop {
        if q.ready() {
            break;
        }
    }
}

fn r10g_weigh(_p: &Point) -> usize {
    1
}

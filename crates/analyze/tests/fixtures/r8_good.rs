//! R8 fixture: the deterministic counterpart — ordered collections and a
//! justified timing exemption.
use std::collections::BTreeMap;

pub fn pair_counts(xs: &[u32]) -> u64 {
    // allow(hdsj::determinism): timing feeds an obs attribute only.
    let _t = std::time::Instant::now();
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.values().map(|&v| u64::from(v)).sum()
}

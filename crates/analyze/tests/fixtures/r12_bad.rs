// Fixture: R12 `durability_order` — the checkpoint record is appended
// before the data fsync (line 19), so a crash in between replays to
// pages that never reached disk.
struct StorageEngine {
    dirty: u32,
}

struct Manifest {
    len: u32,
}

struct R12Ckpt {
    engine: StorageEngine,
    manifest: Manifest,
}

impl R12Ckpt {
    fn r12_seal(&mut self, rec: &[u8]) {
        self.manifest.append(rec);
        self.engine.sync();
        self.manifest.sync();
    }
}

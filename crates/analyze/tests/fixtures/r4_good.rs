// Fixture: R4 passes — declared order, drop-release, scoped release.
fn forward(pool: &Pool) {
    let inner = pool.inner.lock();
    let state = pool.state.lock();
    let pages = pool.pages.lock();
    drop((inner, state, pages));
}

fn released(pool: &Pool) {
    let sink = pool.counters.lock();
    drop(sink);
    let inner = pool.inner.lock();
    drop(inner);
}

fn scoped(pool: &Pool) {
    {
        let events = pool.events.lock();
        drop(events);
    }
    let inner = pool.inner.lock();
    drop(inner);
}

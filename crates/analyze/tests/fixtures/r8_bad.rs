//! R8 fixture: nondeterministic sources in a result-producing path.
use std::collections::HashMap;

pub fn pair_counts(xs: &[u32]) -> u64 {
    let t = std::time::Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.values().map(|&v| u64::from(v)).sum::<u64>() + t.elapsed().as_secs()
}

//! R7 fixture: declared atomics used correctly — a commented relaxed gate
//! op, a stat counter, a stronger ordering, and a justified suppression.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn run(dirty: &AtomicBool, reads: &AtomicU64, scratch: &AtomicU64) {
    // ORDERING: set under the frame lock; flush re-checks under the same
    // lock, so relaxed only needs the store's atomicity.
    dirty.store(true, Ordering::Relaxed);
    reads.fetch_add(1, Ordering::Relaxed);
    dirty.store(false, Ordering::SeqCst);
    // allow(hdsj::atomic_ordering): fixture-local scratch cell.
    scratch.load(Ordering::Relaxed);
}

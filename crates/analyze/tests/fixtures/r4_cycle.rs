// Fixture: R4 `lock_order` interprocedural — the obs sink (rank 3) is held
// across a call that re-enters the pool lock (rank 0) through a recursion
// knot (line 6). The lexical pass alone cannot see this.
fn r4x_sink_then_pool(pool: &Pool) {
    let sink = pool.counters.lock();
    r4x_enter(pool, 0);
    drop(sink);
}

fn r4x_enter(pool: &Pool, depth: usize) {
    r4x_reenter(pool, depth);
}

fn r4x_reenter(pool: &Pool, depth: usize) {
    let g = pool.inner.lock();
    drop(g);
    r4x_enter(pool, depth + 1);
}

// The declared order — pool lock held while the callee reaches the obs
// sink — stays clean.
fn r4x_pool_then_sink(pool: &Pool) {
    let g = pool.inner.lock();
    r4x_note(pool);
    drop(g);
}

fn r4x_note(pool: &Pool) {
    let s = pool.counters.lock();
    drop(s);
}

//! R15 fixture: arithmetic that can wrap before any check sees it — a
//! `let` that multiplies unbounded values, and the legacy assert form
//! whose own left side wraps in release mode.
pub fn gather(xs: &[f64], i: usize, stride: usize) -> f64 {
    let o = i * stride;
    debug_assert!(xs.len() >= 1 && o <= xs.len() - 1);
    // SAFETY: the assert above bounds `o < xs.len()`.
    unsafe { *xs.as_ptr().add(o) }
}

pub fn legacy(xs: &[f64], at: usize) -> f64 {
    debug_assert!(at + 2 <= xs.len());
    // SAFETY: the assert above claims `at + 2 <= xs.len()`.
    unsafe { *xs.as_ptr().add(at) }
}

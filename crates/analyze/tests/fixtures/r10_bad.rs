// Fixture: R10 `lifecycle_poll` — input-sized loops that never reach a
// lifecycle poll (lines 5 and 12).
fn r10_scan(points: &[Point]) -> usize {
    let mut n = 0;
    for p in points {
        n += r10_touch(p);
    }
    n
}

fn r10_spin(q: &Queue) {
    loop {
        if q.ready() {
            break;
        }
    }
}

fn r10_touch(_p: &Point) -> usize {
    1
}

//! R13 fixture: every raw offset is discharged by a dominating check —
//! an assert conjunct, a loop guard, or an inverted early-return guard.
pub fn load2(xs: &[f64], at: usize) -> f64 {
    debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);
    // SAFETY: the debug_assert above bounds `at + 1 < xs.len()`.
    unsafe { *xs.as_ptr().add(at) }
}

pub fn sum(xs: &[f64]) -> f64 {
    let n = xs.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: the loop guard bounds `i + 1 < xs.len()`.
        acc += unsafe { *xs.as_ptr().add(i) };
        i += 2;
    }
    acc
}

pub fn pick(ids: &[u32], t: usize) -> u32 {
    if t < ids.len() {
        // SAFETY: guarded by the branch condition above.
        return unsafe { *ids.get_unchecked(t) };
    }
    0
}

// Fixture: R1 passes — typed errors, suppression, and the test exemption.
pub fn first(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn second(flag: bool) {
    if flag {
        // allow(hdsj::no_panic): fixture-sanctioned failpoint.
        panic!("contained");
    }
}

pub fn lookalikes(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        Some(1).unwrap();
    }
}

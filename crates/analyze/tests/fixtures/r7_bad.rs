//! R7 fixture: an undeclared atomic and a bare relaxed gate operation.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn run(stop: &AtomicBool, undeclared: &AtomicUsize) {
    undeclared.fetch_add(1, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
}

// Fixture: R2 passes on the SIMD-kernel shape — a `#[target_feature]`
// helper whose intrinsics sit in an `unsafe` block with an adjacent
// SAFETY comment, plus the dispatch-guarded entry wrapper. Mounted
// under `crates/core/src/simd/`, so R8's determinism scope also covers
// it: no banned identifiers may appear.
use std::arch::x86_64::{__m128d, _mm_loadu_pd, _mm_sub_pd};

#[target_feature(enable = "sse2")]
#[inline]
fn diff2(a: &[f64], b: &[f64], at: usize) -> __m128d {
    debug_assert!(a.len() >= 2 && at <= a.len() - 2);
    debug_assert!(b.len() >= 2 && at <= b.len() - 2);
    // SAFETY: the debug_asserts above bound `at + 2 <= len` for both
    // slices, so the two unaligned 16-byte loads stay in bounds.
    unsafe { _mm_sub_pd(_mm_loadu_pd(a.as_ptr().add(at)), _mm_loadu_pd(b.as_ptr().add(at))) }
}

pub fn entry(a: &[f64], b: &[f64]) -> __m128d {
    // SAFETY: SSE2 is part of the x86-64 baseline ABI, so the kernel's
    // required target feature is always present on this architecture.
    unsafe { diff2(a, b, 0) }
}

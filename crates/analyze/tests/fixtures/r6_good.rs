// Fixture: R6 passes — registered names, dynamic names skipped.
fn record(t: &Tracer, s: &MemorySink, prefix: &str) {
    t.counter("pool.hits").add(1);
    t.gauge("pool.hit_rate", 0.5);
    t.histogram("pool.read_ns").record(17);
    s.counter_value("msj.refine.pairs");
    s.hist_snapshot("pool.read_ns");
    t.counter(format!("{prefix}.reads")).add(1);
    t.histogram(format!("{prefix}.latency_ns")).record(1);
}

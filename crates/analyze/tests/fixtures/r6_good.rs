// Fixture: R6 passes — registered names, dynamic names skipped.
fn record(t: &Tracer, s: &MemorySink, prefix: &str) {
    t.counter("pool.hits").add(1);
    t.gauge("pool.hit_rate", 0.5);
    s.counter_value("msj.refine.pairs");
    t.counter(format!("{prefix}.reads")).add(1);
}

// Fixture: R11 `budget_charge` — a raw spill write that no caller meters
// (line 9): neither `r11_flush` nor its only caller charges the budget.
struct R11Spill {
    file: File,
}

impl R11Spill {
    fn r11_flush(&mut self, buf: &[u8]) {
        self.file.write_all(buf);
    }
}

fn r11_driver(spill: &mut R11Spill, buf: &[u8]) {
    spill.r11_flush(buf);
}

//! R15 fixture: offset arithmetic proved by dominating guards, the
//! overflow-safe assert form, or a justified `// BOUND:` comment.
pub fn fetch2(xs: &[f64], at: usize) -> f64 {
    debug_assert!(xs.len() >= 2 && at <= xs.len() - 2);
    // SAFETY: the debug_assert above bounds `at + 1 < xs.len()`.
    unsafe { *xs.as_ptr().add(at) }
}

pub fn sum_pairs(a: &[f64]) -> f64 {
    let d = a.len();
    let mut dim = 0;
    let mut acc = 0.0;
    while dim + 4 <= d {
        acc += fetch2(a, dim) + fetch2(a, dim + 2);
        dim += 4;
    }
    acc
}

pub fn column(data: &[f64], dim: usize, width: usize, t: usize) -> f64 {
    // BOUND: data is a dims*width matrix, so the product fits usize.
    fetch2(data, dim * width + t)
}

// Fixture registry; stands in for crates/obs/src/names.rs in fixture
// workspaces (it is installed under that path by the tests).
pub const POOL_HITS: &str = "pool.hits";
pub const REFINE_PAIRS: &str = "msj.refine.pairs";
pub const HIT_RATE: &str = "pool.hit_rate";
pub const POOL_READ_NS: &str = "pool.read_ns";

//! R14 fixture: the sanctioned entry pattern — a `level()`-probing
//! dispatch shim routes to a probe wrapper that asserts availability
//! before entering the gated kernel. Mounted at `simd/mod.rs`.
use std::arch::x86_64::{__m256d, _mm256_add_pd};

pub enum SimdLevel {
    Scalar,
    Avx2,
}

fn level() -> SimdLevel {
    SimdLevel::Scalar
}

fn avx2_available() -> bool {
    false
}

#[target_feature(enable = "avx2")]
fn gated_kernel(v: __m256d) -> __m256d {
    // SAFETY: lane-wise arithmetic touches no memory; callers hold the
    // AVX2 probe.
    unsafe { _mm256_add_pd(v, v) }
}

fn avx2_wrapper(v: __m256d) -> __m256d {
    debug_assert!(avx2_available());
    // SAFETY: dispatch only routes here when the AVX2 probe succeeded.
    unsafe { gated_kernel(v) }
}

pub fn dispatch(v: __m256d) -> __m256d {
    match level() {
        SimdLevel::Avx2 => avx2_wrapper(v),
        SimdLevel::Scalar => v,
    }
}

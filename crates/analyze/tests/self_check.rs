//! The live-workspace self-check: running the full rule set over this
//! repository's own sources must produce zero deny-level findings. This is
//! the same gate CI applies via `cargo run -p hdsj-analyze -- check`; as a
//! test it fails the ordinary `cargo test` run too, so a panic-happy patch
//! cannot land by skipping the analyze job.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

#[test]
fn live_workspace_has_zero_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = hdsj_analyze::check_workspace(&root).expect("workspace must be readable");
    assert!(
        !report.failed(),
        "the workspace no longer passes its own static analysis:\n{}",
        report.render_human()
    );
}

#[test]
fn live_workspace_report_counts_are_consistent() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = hdsj_analyze::check_workspace(&root).expect("workspace must be readable");
    assert_eq!(
        report.denies() + report.warns() + report.notes(),
        report.diagnostics.len(),
        "every diagnostic is deny, warn, or note"
    );
    // JSONL rendering emits exactly one line per diagnostic.
    assert_eq!(
        report.render_json().lines().count(),
        report.diagnostics.len()
    );
}

/// R13 must leave a proof trail on the live tree: every unsafe kernel
/// file's raw offsets are *discharged* (note-level witnesses in the JSONL
/// stream), not merely unflagged.
#[test]
fn live_simd_kernels_carry_discharged_bound_proofs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = hdsj_analyze::check_workspace(&root).expect("workspace must be readable");
    let jsonl = report.render_json();
    for file in [
        "crates/core/src/simd/x86.rs",
        "crates/core/src/simd/neon.rs",
    ] {
        assert!(
            jsonl.lines().any(|l| l.contains("unsafe_bounds")
                && l.contains("\"note\"")
                && l.contains(file)),
            "no discharged unsafe_bounds proof recorded for {file}:\n{jsonl}"
        );
    }
}

//! Fixture-driven rule tests: each rule has a `bad` fixture whose exact
//! diagnostics are pinned (rule, path, line, level) and a `good` fixture
//! that must come back clean. Fixtures live under `tests/fixtures/` and
//! are fed through [`Workspace::from_sources`], the same pipeline as a
//! real checkout minus the directory walk.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj_analyze::{Level, Workspace};
use std::path::{Path, PathBuf};

/// Loads `tests/fixtures/<name>` and mounts it at `mount` in the fixture
/// workspace (the registry fixture is mounted at the real registry path).
fn fixture(name: &str, mount: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    (PathBuf::from(mount), text)
}

#[test]
fn bad_fixtures_produce_exactly_the_expected_diagnostics() {
    let ws = Workspace::from_sources(&[
        fixture("r1_bad.rs", "r1_bad.rs"),
        fixture("r2_bad.rs", "r2_bad.rs"),
        fixture("r3_bad.rs", "r3_bad.rs"),
        fixture("r4_bad.rs", "r4_bad.rs"),
        fixture("r5_bad.rs", "r5_bad.rs"),
        fixture("r6_bad.rs", "r6_bad.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
    ]);
    let got: Vec<(String, &str, u32, Level)> = ws
        .check()
        .into_iter()
        .map(|d| {
            (
                d.path.to_string_lossy().into_owned(),
                d.rule,
                d.line,
                d.level,
            )
        })
        .collect();
    let want: Vec<(String, &str, u32, Level)> = vec![
        ("r1_bad.rs".into(), "no_panic", 3, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 7, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 12, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 14, Level::Deny),
        ("r2_bad.rs".into(), "safety_comment", 3, Level::Deny),
        ("r3_bad.rs".into(), "pin_pairing", 4, Level::Deny),
        ("r3_bad.rs".into(), "pin_pairing", 7, Level::Deny),
        ("r4_bad.rs".into(), "lock_order", 4, Level::Deny),
        ("r5_bad.rs".into(), "error_taxonomy", 4, Level::Deny),
        ("r6_bad.rs".into(), "counter_registry", 3, Level::Deny),
    ];
    assert_eq!(got, want, "diagnostic set drifted");
}

#[test]
fn bad_fixture_messages_name_the_offence() {
    let ws = Workspace::from_sources(&[
        fixture("r5_bad.rs", "r5_bad.rs"),
        fixture("r6_bad.rs", "r6_bad.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
    ]);
    let diags = ws.check();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "error_taxonomy" && d.message.contains("Error::Lost")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "counter_registry" && d.message.contains("pool.hit")),
        "{diags:?}"
    );
}

#[test]
fn good_fixtures_are_clean() {
    let ws = Workspace::from_sources(&[
        fixture("r1_good.rs", "r1_good.rs"),
        fixture("r2_good.rs", "r2_good.rs"),
        fixture("r3_good.rs", "r3_good.rs"),
        fixture("r4_good.rs", "r4_good.rs"),
        fixture("r5_good.rs", "r5_good.rs"),
        fixture("r6_good.rs", "r6_good.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
    ]);
    let diags = ws.check();
    assert!(diags.is_empty(), "good fixtures must be clean:\n{diags:#?}");
}

#[test]
fn diagnostics_render_as_path_line_level_rule() {
    let ws = Workspace::from_sources(&[fixture("r2_bad.rs", "r2_bad.rs")]);
    let diags = ws.check();
    assert_eq!(diags.len(), 1);
    let line = diags[0].to_string();
    assert!(
        line.starts_with("r2_bad.rs:3: deny[hdsj::safety_comment]"),
        "human rendering drifted: {line}"
    );
}

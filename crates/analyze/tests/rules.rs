//! Fixture-driven rule tests: each rule has a `bad` fixture whose exact
//! diagnostics are pinned (rule, path, line, level) and a `good` fixture
//! that must come back clean. Fixtures live under `tests/fixtures/` and
//! are fed through [`Workspace::from_sources`], the same pipeline as a
//! real checkout minus the directory walk.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj_analyze::{Level, Workspace};
use std::path::{Path, PathBuf};

/// Loads `tests/fixtures/<name>` and mounts it at `mount` in the fixture
/// workspace (the registry fixture is mounted at the real registry path).
fn fixture(name: &str, mount: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    (PathBuf::from(mount), text)
}

#[test]
fn bad_fixtures_produce_exactly_the_expected_diagnostics() {
    let ws = Workspace::from_sources(&[
        fixture("r1_bad.rs", "r1_bad.rs"),
        fixture("r2_bad.rs", "r2_bad.rs"),
        fixture("r3_bad.rs", "r3_bad.rs"),
        fixture("r4_bad.rs", "r4_bad.rs"),
        fixture("r4_cycle.rs", "r4_cycle.rs"),
        fixture("r5_bad.rs", "r5_bad.rs"),
        fixture("r6_bad.rs", "r6_bad.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
        // The concurrency and lifecycle rules key off workspace paths
        // (per-crate atomic table, byte-deterministic module list,
        // crates/exec exemption, storage/manifest protocol scope), so
        // their fixtures mount at realistic crate paths. The r8 fixture
        // mounts under kernels — in R8's scope but outside R10's — so
        // its loops exercise exactly one rule.
        fixture("r7_bad.rs", "crates/exec/src/r7_bad.rs"),
        fixture("r8_bad.rs", "crates/core/src/kernels/r8_bad.rs"),
        // R8's scope grew to `core::refine` with the dataflow PR; the same
        // fixture remounts there to pin the extension.
        fixture("r8_bad.rs", "crates/core/src/refine/r8_bad.rs"),
        fixture("r9_bad.rs", "crates/storage/src/r9_bad.rs"),
        fixture("r10_bad.rs", "crates/msj/src/r10_bad.rs"),
        fixture("r11_bad.rs", "crates/storage/src/r11_bad.rs"),
        fixture("r12_bad.rs", "crates/storage/src/manifest/r12_bad.rs"),
        // The dataflow rules key off the unsafe SIMD layer's path.
        fixture("r13_bad.rs", "crates/core/src/simd/r13_bad.rs"),
        fixture("r14_bad.rs", "crates/core/src/simd/r14_bad.rs"),
        fixture("r15_bad.rs", "crates/core/src/simd/r15_bad.rs"),
    ]);
    let got: Vec<(String, &str, u32, Level)> = ws
        .check()
        .into_iter()
        .map(|d| {
            (
                d.path.to_string_lossy().into_owned(),
                d.rule,
                d.line,
                d.level,
            )
        })
        .collect();
    let want: Vec<(String, &str, u32, Level)> = vec![
        (
            "crates/core/src/kernels/r8_bad.rs".into(),
            "determinism",
            2,
            Level::Deny,
        ),
        (
            "crates/core/src/kernels/r8_bad.rs".into(),
            "determinism",
            5,
            Level::Deny,
        ),
        (
            "crates/core/src/kernels/r8_bad.rs".into(),
            "determinism",
            6,
            Level::Deny,
        ),
        (
            "crates/core/src/kernels/r8_bad.rs".into(),
            "determinism",
            6,
            Level::Deny,
        ),
        (
            "crates/core/src/refine/r8_bad.rs".into(),
            "determinism",
            2,
            Level::Deny,
        ),
        (
            "crates/core/src/refine/r8_bad.rs".into(),
            "determinism",
            5,
            Level::Deny,
        ),
        (
            "crates/core/src/refine/r8_bad.rs".into(),
            "determinism",
            6,
            Level::Deny,
        ),
        (
            "crates/core/src/refine/r8_bad.rs".into(),
            "determinism",
            6,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r13_bad.rs".into(),
            "unsafe_bounds",
            7,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r13_bad.rs".into(),
            "unsafe_bounds",
            13,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r14_bad.rs".into(),
            "target_feature_gate",
            7,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r14_bad.rs".into(),
            "target_feature_gate",
            18,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r15_bad.rs".into(),
            "unchecked_arith",
            5,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r15_bad.rs".into(),
            "unsafe_bounds",
            8,
            Level::Note,
        ),
        (
            "crates/core/src/simd/r15_bad.rs".into(),
            "unchecked_arith",
            12,
            Level::Deny,
        ),
        (
            "crates/core/src/simd/r15_bad.rs".into(),
            "unsafe_bounds",
            14,
            Level::Note,
        ),
        (
            "crates/exec/src/r7_bad.rs".into(),
            "atomic_ordering",
            5,
            Level::Deny,
        ),
        (
            "crates/exec/src/r7_bad.rs".into(),
            "atomic_ordering",
            6,
            Level::Deny,
        ),
        (
            "crates/msj/src/r10_bad.rs".into(),
            "lifecycle_poll",
            5,
            Level::Deny,
        ),
        (
            "crates/msj/src/r10_bad.rs".into(),
            "lifecycle_poll",
            12,
            Level::Deny,
        ),
        (
            "crates/storage/src/manifest/r12_bad.rs".into(),
            "durability_order",
            19,
            Level::Deny,
        ),
        (
            "crates/storage/src/r11_bad.rs".into(),
            "budget_charge",
            9,
            Level::Deny,
        ),
        (
            "crates/storage/src/r9_bad.rs".into(),
            "exec_only",
            4,
            Level::Deny,
        ),
        (
            "crates/storage/src/r9_bad.rs".into(),
            "exec_only",
            5,
            Level::Deny,
        ),
        ("r1_bad.rs".into(), "no_panic", 3, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 7, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 12, Level::Deny),
        ("r1_bad.rs".into(), "no_panic", 14, Level::Deny),
        ("r2_bad.rs".into(), "safety_comment", 3, Level::Deny),
        ("r3_bad.rs".into(), "pin_pairing", 4, Level::Deny),
        ("r3_bad.rs".into(), "pin_pairing", 7, Level::Deny),
        ("r4_bad.rs".into(), "lock_order", 4, Level::Deny),
        ("r4_cycle.rs".into(), "lock_order", 6, Level::Deny),
        ("r5_bad.rs".into(), "error_taxonomy", 4, Level::Deny),
        ("r6_bad.rs".into(), "counter_registry", 3, Level::Deny),
        ("r6_bad.rs".into(), "counter_registry", 4, Level::Deny),
    ];
    assert_eq!(got, want, "diagnostic set drifted");
}

#[test]
fn bad_fixture_messages_name_the_offence() {
    let ws = Workspace::from_sources(&[
        fixture("r5_bad.rs", "r5_bad.rs"),
        fixture("r6_bad.rs", "r6_bad.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
    ]);
    let diags = ws.check();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "error_taxonomy" && d.message.contains("Error::Lost")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "counter_registry" && d.message.contains("pool.hit")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "counter_registry" && d.message.contains("pool.read_latency")),
        "{diags:?}"
    );
}

#[test]
fn good_fixtures_are_clean() {
    let ws = Workspace::from_sources(&[
        fixture("r1_good.rs", "r1_good.rs"),
        fixture("r2_good.rs", "r2_good.rs"),
        fixture("r2_intrinsics.rs", "crates/core/src/simd/r2_intrinsics.rs"),
        fixture("r3_good.rs", "r3_good.rs"),
        fixture("r4_good.rs", "r4_good.rs"),
        fixture("r5_good.rs", "r5_good.rs"),
        fixture("r6_good.rs", "r6_good.rs"),
        fixture("r6_names.rs", "obs/src/names.rs"),
        fixture("r7_good.rs", "crates/storage/src/r7_good.rs"),
        fixture("r8_good.rs", "crates/core/src/kernels/r8_good.rs"),
        fixture("r9_good.rs", "crates/storage/src/r9_good.rs"),
        fixture("r10_good.rs", "crates/msj/src/r10_good.rs"),
        fixture("r11_good.rs", "crates/storage/src/r11_good.rs"),
        fixture("r12_good.rs", "crates/storage/src/manifest/r12_good.rs"),
        fixture("r8_good.rs", "crates/core/src/refine/r8_good.rs"),
        fixture("r13_good.rs", "crates/core/src/simd/r13_good.rs"),
        // The R14 good fixture is the dispatch-shim pattern itself, so it
        // mounts at the one path the rule treats as a shim.
        fixture("r14_good.rs", "crates/core/src/simd/mod.rs"),
        fixture("r15_good.rs", "crates/core/src/simd/r15_good.rs"),
    ]);
    let diags = ws.check();
    // Discharged R13 proofs surface as notes; nothing may deny or warn.
    assert!(
        diags.iter().all(|d| d.level == Level::Note),
        "good fixtures must be deny/warn-free:\n{diags:#?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "unsafe_bounds" && d.message.contains("discharged")),
        "discharged bounds should leave a proof trail:\n{diags:#?}"
    );
}

/// Deleting a single precondition assert from an otherwise-proved kernel
/// must flip R13 to deny: the proof obligations are live, not vestigial.
#[test]
fn deleting_a_precondition_assert_makes_r13_deny() {
    let (_, text) = fixture("r13_good.rs", "");
    let stripped: String = text
        .lines()
        .filter(|l| !l.contains("debug_assert!"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(stripped, text, "fixture must contain the assert");
    let ws = Workspace::from_sources(&[(
        PathBuf::from("crates/core/src/simd/stripped.rs"),
        stripped,
    )]);
    let diags = ws.check();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "unsafe_bounds" && d.level == Level::Deny),
        "stripping the assert must undischarge the site:\n{diags:#?}"
    );
}

#[test]
fn rule_filter_restricts_the_run() {
    let ws = Workspace::from_sources(&[
        fixture("r1_bad.rs", "r1_bad.rs"),
        fixture("r7_bad.rs", "crates/exec/src/r7_bad.rs"),
        fixture("r8_bad.rs", "crates/msj/src/r8_bad.rs"),
    ]);
    let filter = hdsj_analyze::rules::parse_filter("r7,determinism").unwrap();
    let diags = ws.check_filtered(&filter);
    assert!(!diags.is_empty());
    assert!(
        diags
            .iter()
            .all(|d| d.rule == "atomic_ordering" || d.rule == "determinism"),
        "filter leaked other rules:\n{diags:#?}"
    );
    // The unfiltered run on the same sources does report R1.
    assert!(ws.check().iter().any(|d| d.rule == "no_panic"));
    // Typos fail loudly rather than silently checking nothing.
    assert!(hdsj_analyze::rules::parse_filter("r42").is_err());
    assert!(hdsj_analyze::rules::parse_filter("").is_err());
}

#[test]
fn rule_list_names_all_fifteen_rules() {
    let listing = hdsj_analyze::render_rule_list();
    for (id, name) in [
        ("r1", "no_panic"),
        ("r7", "atomic_ordering"),
        ("r8", "determinism"),
        ("r9", "exec_only"),
        ("r10", "lifecycle_poll"),
        ("r11", "budget_charge"),
        ("r12", "durability_order"),
        ("r13", "unsafe_bounds"),
        ("r14", "target_feature_gate"),
        ("r15", "unchecked_arith"),
    ] {
        let line = listing
            .lines()
            .find(|l| l.split_whitespace().next() == Some(id))
            .unwrap_or_else(|| panic!("rule {id} missing from listing:\n{listing}"));
        assert!(line.contains(name), "{line}");
        assert!(line.contains("deny"), "{line}");
    }
    assert_eq!(listing.lines().count(), 15);
}

#[test]
fn explain_renders_doc_example_and_suppression() {
    for key in [
        "r4",
        "lifecycle_poll",
        "hdsj::budget_charge",
        "r13",
        "target_feature_gate",
        "hdsj::unchecked_arith",
    ] {
        let text =
            hdsj_analyze::render_explain(key).unwrap_or_else(|e| panic!("explain {key}: {e}"));
        assert!(text.contains("allow(hdsj::"), "{text}");
        assert!(text.contains("Example"), "{text}");
    }
    assert!(hdsj_analyze::render_explain("r42").is_err());
}

#[test]
fn sarif_rendering_carries_rules_and_results() {
    let ws = Workspace::from_sources(&[fixture("r2_bad.rs", "r2_bad.rs")]);
    let report = hdsj_analyze::CheckReport {
        diagnostics: ws.check(),
    };
    let sarif = report.render_sarif();
    assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
    assert!(
        sarif.contains("\"ruleId\":\"hdsj::safety_comment\""),
        "{sarif}"
    );
    assert!(sarif.contains("\"startLine\":3"), "{sarif}");
    assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
    // Every rule in the catalog is declared in the driver section.
    assert!(
        sarif.contains("\"id\":\"hdsj::durability_order\""),
        "{sarif}"
    );
}

#[test]
fn diagnostics_render_as_path_line_level_rule() {
    let ws = Workspace::from_sources(&[fixture("r2_bad.rs", "r2_bad.rs")]);
    let diags = ws.check();
    assert_eq!(diags.len(), 1);
    let line = diags[0].to_string();
    assert!(
        line.starts_with("r2_bad.rs:3: deny[hdsj::safety_comment]"),
        "human rendering drifted: {line}"
    );
}

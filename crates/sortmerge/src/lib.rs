//! # hdsj-sortmerge — the 1-D projection sort-merge join
//!
//! The simplest non-quadratic baseline in the similarity-join literature:
//! project all points onto one dimension, sort, and sweep a window of width
//! ε — every result pair must project within ε of each other, so the window
//! contains all candidates. The remaining `d − 1` dimensions are only
//! checked by the exact refinement step.
//!
//! The method is excellent when one dimension is discriminative and
//! collapses toward brute force as dimensionality grows (a window of width
//! ε on one axis of `[0,1)^d` keeps an expected `ε·N` fraction of all
//! pairs no matter how large `d` is) — which is precisely why the paper's
//! generation of work moved to multidimensional filter structures. Included
//! here as the degenerate end of the filter spectrum.
//!
//! The projection dimension is selectable; [`SortMergeJoin::best_dimension`]
//! picks the highest-variance one, the standard heuristic.
#![forbid(unsafe_code)]

use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, JoinKind, JoinSpec, JoinStats, LifecycleCtx,
    PairSink, Refiner, Result, SimilarityJoin, Tracer,
};

/// Sweep probes between lifecycle polls: frequent enough that a canceled
/// query stops within a few thousand window probes, rare enough that the
/// poll never shows up in a profile.
const POLL_STRIDE: usize = 4096;

/// Sort-merge join over one projected dimension.
///
/// ```
/// use hdsj_core::{JoinSpec, SimilarityJoin, CountSink};
/// use hdsj_sortmerge::SortMergeJoin;
/// let points = hdsj_data::uniform(4, 150, 3).unwrap();
/// let mut sink = CountSink::default();
/// SortMergeJoin::default().self_join(&points, &JoinSpec::l2(0.2), &mut sink)?;
/// # Ok::<(), hdsj_core::Error>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SortMergeJoin {
    /// Projection dimension; `None` selects the highest-variance dimension
    /// of the (left) input at run time.
    pub dimension: Option<usize>,
    /// Per-query lifecycle context, polled at phase boundaries and every
    /// [`POLL_STRIDE`] sweep probes.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl SortMergeJoin {
    /// Joins on an explicit dimension.
    pub fn on_dimension(dimension: usize) -> SortMergeJoin {
        SortMergeJoin {
            dimension: Some(dimension),
            ..SortMergeJoin::default()
        }
    }

    /// The highest-variance dimension of `ds` — the standard projection
    /// heuristic (a low-variance axis would put everything in one window).
    pub fn best_dimension(ds: &Dataset) -> usize {
        let dims = ds.dims();
        let n = ds.len().max(1) as f64;
        let mut best = 0;
        let mut best_var = f64::NEG_INFINITY;
        for d in 0..dims {
            let mean: f64 = ds.iter().map(|(_, p)| p[d]).sum::<f64>() / n;
            let var: f64 = ds.iter().map(|(_, p)| (p[d] - mean).powi(2)).sum::<f64>() / n;
            if var > best_var {
                best_var = var;
                best = d;
            }
        }
        best
    }

    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        let dims = validate_inputs(a, b, spec)?;
        let dim = match self.dimension {
            Some(d) if d >= dims => {
                return Err(Error::InvalidInput(format!(
                    "projection dimension {d} out of range for d={dims}"
                )));
            }
            Some(d) => d,
            None => Self::best_dimension(a),
        };
        let mut phases = Vec::new();

        let mut root = self.tracer.span("sm1d.join");
        root.attr_str("algo", "SM1D");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", dims as u64);
        root.attr_f64("eps", spec.eps);
        root.attr_u64("projection_dim", dim as u64);

        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let sort_timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "sort",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::SM1D_PHASE_SORT_NS,
        );
        let sorted_a = sorted_projection(a, dim);
        let sorted_b = match kind {
            JoinKind::SelfJoin => None,
            JoinKind::TwoSets => Some(sorted_projection(b, dim)),
        };
        let structure_bytes =
            (sorted_a.len() + sorted_b.as_ref().map(|s| s.len()).unwrap_or(0)) as u64 * 12;
        sort_timer.finish(&mut phases);

        let sweep_timer = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "sweep",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::SM1D_PHASE_SWEEP_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut refiner = Refiner::new(a, b, kind, spec, sink);
        match &sorted_b {
            None => {
                for (idx, &(x, i)) in sorted_a.iter().enumerate() {
                    if idx % POLL_STRIDE == 0 {
                        if let Some(lc) = &self.lifecycle {
                            lc.poll()?;
                        }
                    }
                    for &(y, j) in &sorted_a[idx + 1..] {
                        if y - x > spec.eps {
                            break;
                        }
                        refiner.offer(i, j);
                    }
                }
            }
            Some(sorted_b) => {
                let mut start = 0usize;
                for (idx, &(x, i)) in sorted_a.iter().enumerate() {
                    if idx % POLL_STRIDE == 0 {
                        if let Some(lc) = &self.lifecycle {
                            lc.poll()?;
                        }
                    }
                    while start < sorted_b.len() && sorted_b[start].0 < x - spec.eps {
                        start += 1;
                    }
                    for &(y, j) in &sorted_b[start..] {
                        if y - x > spec.eps {
                            break;
                        }
                        refiner.offer(i, j);
                    }
                }
            }
        }
        let mut stats = refiner.finish(JoinStats::default());
        sweep_timer.finish(&mut phases);

        stats.phases = phases;
        stats.structure_bytes = structure_bytes;
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("sm1d.candidates").add(stats.candidates);
            self.tracer.counter("sm1d.results").add(stats.results);
        }
        root.finish();
        Ok(stats)
    }
}

fn sorted_projection(ds: &Dataset, dim: usize) -> Vec<(f64, u32)> {
    let mut proj: Vec<(f64, u32)> = ds.iter().map(|(i, p)| (p[dim], i)).collect();
    proj.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    proj
}

impl SimilarityJoin for SortMergeJoin {
    fn name(&self) -> &'static str {
        "SM1D"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_bruteforce::BruteForce;
    use hdsj_core::{verify, Metric, VecSink};

    fn compare_with_bf(
        a: &Dataset,
        b: Option<&Dataset>,
        spec: &JoinSpec,
        sm: &mut SortMergeJoin,
    ) {
        let mut want = VecSink::default();
        let mut got = VecSink::default();
        let mut bf = BruteForce::default();
        match b {
            None => {
                bf.self_join(a, spec, &mut want).unwrap();
                sm.self_join(a, spec, &mut got).unwrap();
            }
            Some(b) => {
                bf.join(a, b, spec, &mut want).unwrap();
                sm.join(a, b, spec, &mut got).unwrap();
            }
        }
        verify::assert_same_results("SM1D", &want.pairs, &got.pairs);
    }

    #[test]
    fn matches_brute_force_on_every_dimension_choice() {
        let ds = hdsj_data::uniform(4, 400, 1).unwrap();
        let spec = JoinSpec::new(0.2, Metric::L2);
        for d in 0..4 {
            compare_with_bf(&ds, None, &spec, &mut SortMergeJoin::on_dimension(d));
        }
        compare_with_bf(&ds, None, &spec, &mut SortMergeJoin::default());
    }

    #[test]
    fn matches_brute_force_on_two_set_join() {
        let a = hdsj_data::uniform(5, 300, 2).unwrap();
        let b = hdsj_data::uniform(5, 250, 3).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::Linf] {
            compare_with_bf(
                &a,
                Some(&b),
                &JoinSpec::new(0.25, metric),
                &mut SortMergeJoin::default(),
            );
        }
    }

    #[test]
    fn best_dimension_picks_the_spread_axis() {
        // Dimension 1 spans [0,1); dimension 0 is nearly constant.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![0.5 + (i % 2) as f64 * 1e-6, i as f64 / 100.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        assert_eq!(SortMergeJoin::best_dimension(&ds), 1);
    }

    #[test]
    fn discriminative_dimension_prunes_candidates() {
        let ds = hdsj_data::uniform(2, 2000, 7).unwrap();
        let spec = JoinSpec::new(0.01, Metric::L2);
        let mut sink = VecSink::default();
        let stats = SortMergeJoin::default()
            .self_join(&ds, &spec, &mut sink)
            .unwrap();
        let quadratic = 2000u64 * 1999 / 2;
        assert!(stats.candidates < quadratic / 20, "{}", stats.candidates);
    }

    #[test]
    fn rejects_out_of_range_dimension() {
        let ds = hdsj_data::uniform(3, 10, 1).unwrap();
        let mut sink = VecSink::default();
        assert!(SortMergeJoin::on_dimension(3)
            .self_join(&ds, &JoinSpec::l2(0.1), &mut sink)
            .is_err());
    }

    #[test]
    fn reports_phases() {
        let ds = hdsj_data::uniform(3, 100, 1).unwrap();
        let mut sink = VecSink::default();
        let stats = SortMergeJoin::default()
            .self_join(&ds, &JoinSpec::l2(0.2), &mut sink)
            .unwrap();
        assert!(stats.phase("sort").is_some() && stats.phase("sweep").is_some());
        assert!(stats.structure_bytes > 0);
    }
}

//! # hdsj-ekdb — the ε-KDB tree similarity join
//!
//! The main comparison structure of the paper's evaluation, due to Shim,
//! Srikant and Agrawal (*High-Dimensional Similarity Joins*, ICDE 1997).
//!
//! The ε-KDB tree partitions `[0,1)^d` by **stripes of width ε**: when a
//! leaf overflows, it is split on the next dimension (dimensions are
//! consumed in order 0, 1, 2, … as depth grows) into `⌊1/ε⌋` stripes, the
//! last stripe absorbing the remainder. Because stripes are at least ε wide,
//! two points within L∞ distance ε always land in the *same or adjacent*
//! stripes, so the join only pairs sibling subtrees whose stripe indices
//! differ by at most one — and within leaves, a plane sweep along dimension
//! 0 bounds the candidate set.
//!
//! The structure is excellent when a few dimensions suffice to cut the data
//! down, but its interior fan-out is `⌊1/ε⌋` *per node*, so its memory
//! footprint grows quickly as ε shrinks and as more dimensions get split —
//! the behaviour the paper's memory experiment (E5) contrasts with MSJ's
//! flat level files.
#![forbid(unsafe_code)]

use hdsj_core::stats::TracedPhase;
use hdsj_core::{
    join::validate_inputs, Dataset, Error, JoinKind, JoinSpec, JoinStats, LifecycleCtx,
    PairSink, Refiner, Result, SimilarityJoin, Tracer,
};

/// Leaf sweeps between lifecycle polls during the simultaneous traversal.
const POLL_STRIDE: usize = 256;

/// One node of the ε-KDB tree.
enum Node {
    /// Point ids, sorted by dimension 0 after the build (for the sweep).
    Leaf(Vec<u32>),
    /// Children indexed by stripe of the split dimension; `None` = empty.
    Inner { children: Vec<Option<Box<Node>>> },
}

/// An ε-KDB tree over one dataset.
struct Tree {
    root: Node,
    stripes: usize,
    dims: usize,
    leaf_capacity: usize,
    eps: f64,
}

impl Tree {
    fn build(ds: &Dataset, eps: f64, leaf_capacity: usize) -> Tree {
        // ⌊1/ε⌋ stripes, at least 1; the last stripe absorbs the remainder so
        // every stripe is at least ε wide.
        let stripes = ((1.0 / eps).floor() as usize).max(1);
        let mut tree = Tree {
            root: Node::Leaf(Vec::new()),
            stripes,
            dims: ds.dims(),
            leaf_capacity: leaf_capacity.max(2),
            eps,
        };
        for (i, _) in ds.iter() {
            tree.insert(ds, i);
        }
        tree.sort_leaves(ds);
        tree
    }

    fn insert(&mut self, ds: &Dataset, id: u32) {
        let stripes = self.stripes;
        let capacity = self.leaf_capacity;
        let dims = self.dims;
        let eps = self.eps;
        let mut node = &mut self.root;
        let mut depth = 0;
        loop {
            match node {
                Node::Inner { children } => {
                    let s = stripe_index(ds.point(id)[depth], eps, stripes);
                    let child =
                        children[s].get_or_insert_with(|| Box::new(Node::Leaf(Vec::new())));
                    node = child;
                    depth += 1;
                }
                Node::Leaf(points) => {
                    points.push(id);
                    // Split when over capacity and a dimension is left. Past
                    // depth == dims the leaf simply grows (the structure has
                    // no dimensions left to cut — the paper's behaviour).
                    if points.len() > capacity && depth < dims {
                        let old = std::mem::take(points);
                        let mut children: Vec<Option<Box<Node>>> =
                            (0..stripes).map(|_| None).collect();
                        for pid in old {
                            let s = stripe_index(ds.point(pid)[depth], eps, stripes);
                            // Children are only ever created as leaves in
                            // this loop, so the `if let` always matches.
                            let child = children[s]
                                .get_or_insert_with(|| Box::new(Node::Leaf(Vec::new())));
                            if let Node::Leaf(v) = child.as_mut() {
                                v.push(pid);
                            }
                        }
                        *node = Node::Inner { children };
                    }
                    return;
                }
            }
        }
    }

    /// Sorts every leaf by dimension 0 so leaf joins can plane-sweep.
    fn sort_leaves(&mut self, ds: &Dataset) {
        fn rec(node: &mut Node, ds: &Dataset) {
            match node {
                Node::Leaf(points) => {
                    points.sort_unstable_by(|&a, &b| {
                        ds.point(a)[0].total_cmp(&ds.point(b)[0]).then(a.cmp(&b))
                    });
                }
                Node::Inner { children } => {
                    // allow(hdsj::lifecycle_poll): per-node fan-out bounded
                    // by split arity; the traversal polls per leaf sweep.
                    for c in children.iter_mut().flatten() {
                        rec(c, ds);
                    }
                }
            }
        }
        rec(&mut self.root, ds);
    }

    /// Structure-resident bytes: the quantity experiment E5 reports. Interior
    /// nodes pay for their full `⌊1/ε⌋`-slot child array — that is exactly
    /// the ε-KDB memory behaviour under study.
    fn bytes(&self) -> u64 {
        fn rec(node: &Node) -> u64 {
            match node {
                Node::Leaf(points) => 32 + points.len() as u64 * 4,
                Node::Inner { children } => {
                    32 + children.len() as u64 * 8
                        + children.iter().flatten().map(|c| rec(c)).sum::<u64>()
                }
            }
        }
        rec(&self.root)
    }
}

fn stripe_index(x: f64, eps: f64, stripes: usize) -> usize {
    ((x / eps).floor() as usize).min(stripes - 1)
}

/// ε-KDB tree join.
#[derive(Clone, Debug)]
pub struct EkdbJoin {
    /// Points a leaf may hold before it splits.
    pub leaf_capacity: usize,
    /// Per-query lifecycle context, polled at phase boundaries and every
    /// [`POLL_STRIDE`] leaf sweeps.
    lifecycle: Option<LifecycleCtx>,
    /// Trace sink for spans/counters (disabled by default; see
    /// `set_tracer`).
    pub tracer: Tracer,
}

impl Default for EkdbJoin {
    fn default() -> EkdbJoin {
        EkdbJoin {
            leaf_capacity: 64,
            lifecycle: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl EkdbJoin {
    fn run(
        &self,
        a: &Dataset,
        b: &Dataset,
        kind: JoinKind,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        validate_inputs(a, b, spec)?;
        let mut phases = Vec::new();

        let mut root = self.tracer.span("ekdb.join");
        root.attr_str("algo", "EKDB");
        root.attr_u64("n_a", a.len() as u64);
        root.attr_u64("n_b", b.len() as u64);
        root.attr_u64("dims", a.dims() as u64);
        root.attr_f64("eps", spec.eps);

        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let build = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "build",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::EKDB_PHASE_BUILD_NS,
        );
        let tree_a = Tree::build(a, spec.eps, self.leaf_capacity);
        let tree_b = match kind {
            JoinKind::SelfJoin => None,
            JoinKind::TwoSets => Some(Tree::build(b, spec.eps, self.leaf_capacity)),
        };
        let structure_bytes = tree_a.bytes() + tree_b.as_ref().map(|t| t.bytes()).unwrap_or(0);
        build.finish(&mut phases);

        let join = TracedPhase::start_classed(
            &self.tracer,
            &root,
            "join",
            hdsj_core::obs::PhaseClass::Cpu,
            hdsj_core::obs::names::EKDB_PHASE_JOIN_NS,
        );
        if let Some(lc) = &self.lifecycle {
            lc.poll()?;
        }
        let mut refiner = Refiner::new(a, b, kind, spec, sink);
        let mut ctx = JoinCtx {
            a,
            b,
            eps: spec.eps,
            refiner: &mut refiner,
            lifecycle: self.lifecycle.as_ref(),
            sweeps: 0,
        };
        match (kind, &tree_b) {
            (JoinKind::SelfJoin, _) => ctx.pair_self(&tree_a.root)?,
            (JoinKind::TwoSets, Some(tb)) => ctx.pair_cross(&tree_a.root, &tb.root)?,
            (JoinKind::TwoSets, None) => {
                return Err(Error::Internal(
                    "two-set ε-KDB join reached traversal without tree b".into(),
                ))
            }
        }
        let mut stats = refiner.finish(JoinStats::default());
        join.finish(&mut phases);
        stats.phases = phases;
        stats.structure_bytes = structure_bytes;
        if self.tracer.enabled() {
            root.attr_u64("candidates", stats.candidates);
            root.attr_u64("results", stats.results);
            self.tracer.counter("ekdb.candidates").add(stats.candidates);
            self.tracer.counter("ekdb.results").add(stats.results);
        }
        root.finish();
        Ok(stats)
    }
}

/// The simultaneous traversal. `pair_self(x)` enumerates unordered pairs
/// within subtree `x`; `pair_cross(x, y)` enumerates A-subtree × B-subtree
/// pairs (also used for two *sibling* subtrees of a self-join, where both
/// sides index the same dataset).
struct JoinCtx<'a, 'r> {
    a: &'a Dataset,
    b: &'a Dataset,
    eps: f64,
    refiner: &'r mut Refiner<'a>,
    lifecycle: Option<&'r LifecycleCtx>,
    sweeps: usize,
}

impl JoinCtx<'_, '_> {
    /// Polls the lifecycle context every [`POLL_STRIDE`] leaf sweeps so a
    /// cancellation or deadline stops the traversal without finishing it.
    fn maybe_poll(&mut self) -> Result<()> {
        if self.sweeps.is_multiple_of(POLL_STRIDE) {
            if let Some(lc) = self.lifecycle {
                lc.poll()?;
            }
        }
        self.sweeps += 1;
        Ok(())
    }

    fn pair_self(&mut self, node: &Node) -> Result<()> {
        match node {
            Node::Leaf(points) => self.sweep_within(points)?,
            Node::Inner { children } => {
                for i in 0..children.len() {
                    if let Some(ci) = &children[i] {
                        self.pair_self(ci)?;
                        if let Some(cj) = children.get(i + 1).and_then(|c| c.as_ref()) {
                            self.pair_siblings(ci, cj)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Two distinct subtrees of the same (self-join) tree: both sides hold
    /// ids of dataset `a`, unordered-pair semantics via the refiner.
    // Indexed loops express the |i - j| <= 1 stripe adjacency directly.
    #[allow(clippy::needless_range_loop)]
    fn pair_siblings(&mut self, x: &Node, y: &Node) -> Result<()> {
        match (x, y) {
            (Node::Leaf(px), Node::Leaf(py)) => self.sweep_cross(px, py)?,
            (Node::Inner { children }, leaf @ Node::Leaf(_)) => {
                for c in children.iter().flatten() {
                    self.pair_siblings(c, leaf)?;
                }
            }
            (leaf @ Node::Leaf(_), Node::Inner { children }) => {
                for c in children.iter().flatten() {
                    self.pair_siblings(leaf, c)?;
                }
            }
            (Node::Inner { children: cx }, Node::Inner { children: cy }) => {
                for i in 0..cx.len() {
                    if let Some(ci) = &cx[i] {
                        for j in i.saturating_sub(1)..=(i + 1).min(cy.len() - 1) {
                            if let Some(cj) = &cy[j] {
                                self.pair_siblings(ci, cj)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Two subtrees of *different* trees (two-set join).
    #[allow(clippy::needless_range_loop)]
    fn pair_cross(&mut self, x: &Node, y: &Node) -> Result<()> {
        match (x, y) {
            (Node::Leaf(px), Node::Leaf(py)) => self.sweep_two_set(px, py)?,
            (Node::Inner { children }, leaf @ Node::Leaf(_)) => {
                for c in children.iter().flatten() {
                    self.pair_cross(c, leaf)?;
                }
            }
            (leaf @ Node::Leaf(_), Node::Inner { children }) => {
                for c in children.iter().flatten() {
                    self.pair_cross(leaf, c)?;
                }
            }
            (Node::Inner { children: cx }, Node::Inner { children: cy }) => {
                for i in 0..cx.len() {
                    if let Some(ci) = &cx[i] {
                        for j in i.saturating_sub(1)..=(i + 1).min(cy.len() - 1) {
                            if let Some(cj) = &cy[j] {
                                self.pair_cross(ci, cj)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Unordered pairs inside one leaf, sweeping along dimension 0.
    fn sweep_within(&mut self, points: &[u32]) -> Result<()> {
        self.maybe_poll()?;
        for (idx, &i) in points.iter().enumerate() {
            let xi = self.a.point(i)[0];
            for &j in &points[idx + 1..] {
                if self.a.point(j)[0] - xi > self.eps {
                    break;
                }
                self.refiner.offer(i, j);
            }
        }
        Ok(())
    }

    /// Pairs across two sibling leaves of a self-join tree (both lists are
    /// ids into dataset `a`, both sorted by dimension 0).
    fn sweep_cross(&mut self, px: &[u32], py: &[u32]) -> Result<()> {
        self.maybe_poll()?;
        let mut start = 0usize;
        for &i in px {
            let xi = self.a.point(i)[0];
            while start < py.len() && self.a.point(py[start])[0] < xi - self.eps {
                start += 1;
            }
            for &j in &py[start..] {
                if self.a.point(j)[0] - xi > self.eps {
                    break;
                }
                self.refiner.offer(i, j);
            }
        }
        Ok(())
    }

    /// Pairs across an A-leaf and a B-leaf (two-set join).
    fn sweep_two_set(&mut self, px: &[u32], py: &[u32]) -> Result<()> {
        self.maybe_poll()?;
        let mut start = 0usize;
        for &i in px {
            let xi = self.a.point(i)[0];
            while start < py.len() && self.b.point(py[start])[0] < xi - self.eps {
                start += 1;
            }
            for &j in &py[start..] {
                if self.b.point(j)[0] - xi > self.eps {
                    break;
                }
                self.refiner.offer(i, j);
            }
        }
        Ok(())
    }
}

impl SimilarityJoin for EkdbJoin {
    fn name(&self) -> &'static str {
        "EKDB"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_lifecycle(&mut self, ctx: LifecycleCtx) {
        self.lifecycle = Some(ctx);
    }

    fn join(
        &mut self,
        a: &Dataset,
        b: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, b, JoinKind::TwoSets, spec, sink)
    }

    fn self_join(
        &mut self,
        a: &Dataset,
        spec: &JoinSpec,
        sink: &mut dyn PairSink,
    ) -> Result<JoinStats> {
        self.run(a, a, JoinKind::SelfJoin, spec, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_bruteforce::BruteForce;
    use hdsj_core::{verify, Metric, VecSink};

    fn compare_with_bf(a: &Dataset, b: Option<&Dataset>, spec: &JoinSpec, ekdb: &mut EkdbJoin) {
        let mut want = VecSink::default();
        let mut got = VecSink::default();
        let mut bf = BruteForce::default();
        match b {
            None => {
                bf.self_join(a, spec, &mut want).unwrap();
                ekdb.self_join(a, spec, &mut got).unwrap();
            }
            Some(b) => {
                bf.join(a, b, spec, &mut want).unwrap();
                ekdb.join(a, b, spec, &mut got).unwrap();
            }
        }
        verify::assert_same_results("EKDB", &want.pairs, &got.pairs);
    }

    #[test]
    fn matches_brute_force_on_uniform_self_join() {
        for (dims, eps) in [(2usize, 0.05), (4, 0.2), (8, 0.3), (16, 0.5)] {
            let ds = hdsj_data::uniform(dims, 400, dims as u64 + 100).unwrap();
            compare_with_bf(
                &ds,
                None,
                &JoinSpec::new(eps, Metric::L2),
                &mut EkdbJoin::default(),
            );
        }
    }

    #[test]
    fn matches_brute_force_on_two_set_join() {
        let a = hdsj_data::uniform(5, 350, 31).unwrap();
        let b = hdsj_data::uniform(5, 280, 32).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::Linf] {
            compare_with_bf(
                &a,
                Some(&b),
                &JoinSpec::new(0.22, metric),
                &mut EkdbJoin::default(),
            );
        }
    }

    #[test]
    fn matches_brute_force_with_tiny_leaves() {
        // Tiny leaf capacity forces deep splitting through many dimensions.
        let ds = hdsj_data::uniform(6, 300, 77).unwrap();
        let mut ekdb = EkdbJoin {
            leaf_capacity: 2,
            ..Default::default()
        };
        compare_with_bf(&ds, None, &JoinSpec::new(0.3, Metric::L2), &mut ekdb);
    }

    #[test]
    fn matches_brute_force_on_clustered_data() {
        let ds = hdsj_data::gaussian_clusters(
            4,
            600,
            hdsj_data::ClusterSpec {
                clusters: 6,
                sigma: 0.02,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.04, Metric::L2),
            &mut EkdbJoin::default(),
        );
    }

    #[test]
    fn matches_brute_force_on_correlated_data() {
        let ds = hdsj_data::correlated(8, 400, 0.05, 3).unwrap();
        compare_with_bf(
            &ds,
            None,
            &JoinSpec::new(0.1, Metric::L2),
            &mut EkdbJoin::default(),
        );
    }

    #[test]
    fn stripe_boundary_points_survive() {
        // Points exactly on stripe boundaries and in the remainder stripe.
        let eps = 0.3; // stripes: [0,.3) [.3,.6) [.6,1) — last absorbs 0.1
        let ds = Dataset::from_rows(&[
            vec![0.3, 0.5],
            vec![0.299, 0.5],
            vec![0.6, 0.5],
            vec![0.899, 0.5],
            vec![0.95, 0.5],
        ])
        .unwrap();
        let mut ekdb = EkdbJoin {
            leaf_capacity: 2,
            ..Default::default()
        };
        compare_with_bf(&ds, None, &JoinSpec::new(eps, Metric::Linf), &mut ekdb);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let mut rows = vec![vec![0.5, 0.5, 0.5]; 50];
        rows.push(vec![0.51, 0.5, 0.5]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut ekdb = EkdbJoin {
            leaf_capacity: 4,
            ..Default::default()
        };
        compare_with_bf(&ds, None, &JoinSpec::new(0.05, Metric::L2), &mut ekdb);
    }

    #[test]
    fn memory_grows_as_eps_shrinks() {
        // The ε-KDB signature: interior fan-out is ⌊1/ε⌋, so structure
        // memory explodes as ε shrinks.
        let ds = hdsj_data::uniform(4, 2000, 8).unwrap();
        let bytes = |eps: f64| {
            let mut sink = VecSink::default();
            EkdbJoin {
                leaf_capacity: 16,
                ..Default::default()
            }
            .self_join(&ds, &JoinSpec::new(eps, Metric::L2), &mut sink)
            .unwrap()
            .structure_bytes
        };
        assert!(
            bytes(0.01) > 4 * bytes(0.2),
            "{} vs {}",
            bytes(0.01),
            bytes(0.2)
        );
    }

    #[test]
    fn reports_phases() {
        let ds = hdsj_data::uniform(3, 100, 2).unwrap();
        let mut sink = VecSink::default();
        let stats = EkdbJoin::default()
            .self_join(&ds, &JoinSpec::l2(0.2), &mut sink)
            .unwrap();
        assert!(stats.phase("build").is_some());
        assert!(stats.phase("join").is_some());
    }
}

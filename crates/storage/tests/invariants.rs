//! The `debug-invariants` suite: a chaos profile and a property test run
//! with the runtime invariant layer armed, asserting that no invariant
//! trips (a trip is a panic, so the tests fail loudly) **and** that the
//! layer was actually live (`invariants::checks()` advanced — a silently
//! compiled-out checker would "pass" everything).
//!
//! CI runs this file via
//! `cargo test -p hdsj-storage --features debug-invariants`.
#![cfg(feature = "debug-invariants")]
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdsj_storage::invariants;
use hdsj_storage::{FaultKind, FaultPlan, OpKind, RetryPolicy, StorageEngine, PAGE_HEADER};
use proptest::prelude::*;

/// Chaos profile: a tiny pool over a disk injecting transient, persistent,
/// torn, and corrupting faults, driven through alloc / write / flush /
/// evict / free cycles. Every operation is allowed to fail with a typed
/// error — what must NOT happen is an invariant trip (lock-order
/// violation, freelist aliasing a resident frame, a sealed page that does
/// not verify, or pins surviving the run).
#[test]
fn chaos_profile_trips_no_invariants() {
    let before = invariants::checks();
    for seed in [3u64, 17, 101] {
        let plan = FaultPlan::new(seed);
        plan.probability(Some(OpKind::Write), 0.2, FaultKind::Transient);
        plan.probability(Some(OpKind::Read), 0.1, FaultKind::Transient);
        plan.probability(Some(OpKind::Write), 0.05, FaultKind::Torn);
        plan.probability(Some(OpKind::Write), 0.05, FaultKind::Corrupt);
        plan.on_nth(Some(OpKind::Alloc), 7, FaultKind::Persistent);
        let eng = StorageEngine::builder(4)
            .retry(RetryPolicy::backoff(2))
            .faults(plan)
            .in_memory();

        let mut ids = Vec::new();
        for round in 0..200u64 {
            match round % 5 {
                0 | 1 => {
                    // Allocate and dirty a page; faults may refuse it.
                    if let Ok(p) = eng.alloc() {
                        p.write().put_u64(PAGE_HEADER, round);
                        ids.push(p.id());
                    }
                }
                2 => {
                    // Re-read an old page; corruption faults may surface
                    // as typed errors here.
                    if let Some(&id) = ids.get((round as usize / 5) % ids.len().max(1)) {
                        let _ = eng.fetch(id);
                    }
                }
                3 => {
                    let _ = eng.flush_all();
                }
                _ => {
                    // Retire a page to the freelist (never reused ids —
                    // the pool owns reuse).
                    if ids.len() > 8 {
                        let id = ids.remove(0);
                        let _ = eng.free(id);
                    }
                }
            }
        }
        assert_eq!(
            eng.pool().pinned_frames(),
            0,
            "no guard is alive, so no frame may stay pinned"
        );
        // Dropping the engine runs the pool's quiescence invariant.
        drop(eng);
    }
    assert!(
        invariants::checks() > before,
        "the invariant layer must have been live during the chaos profile"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property: any interleaving of pool operations over a faulty disk
    /// preserves the runtime invariants and ends quiescent. Ops and fault
    /// pressure are both randomized; results may be typed errors, trips
    /// may not happen.
    #[test]
    fn random_op_sequences_hold_invariants(
        seed in 0u64..1000,
        fault_p in 0.0f64..0.3,
        ops in proptest::collection::vec(0u8..4, 1..60),
    ) {
        let before = invariants::checks();
        let plan = FaultPlan::new(seed);
        plan.probability(None, fault_p, FaultKind::Transient);
        let eng = StorageEngine::builder(3)
            .retry(RetryPolicy::backoff(1))
            .faults(plan)
            .in_memory();
        let mut ids: Vec<u64> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    if let Ok(p) = eng.alloc() {
                        p.write().put_u64(PAGE_HEADER, step as u64);
                        ids.push(p.id());
                    }
                }
                1 => {
                    if !ids.is_empty() {
                        let _ = eng.fetch(ids[step % ids.len()]);
                    }
                }
                2 => {
                    let _ = eng.flush_all();
                }
                _ => {
                    if ids.len() > 2 {
                        let id = ids.swap_remove(step % ids.len());
                        let _ = eng.free(id);
                    }
                }
            }
        }
        prop_assert_eq!(eng.pool().pinned_frames(), 0);
        drop(eng);
        prop_assert!(invariants::checks() > before);
    }
}

//! Crash-consistent checkpoint manifests for resumable joins.
//!
//! A manifest is an append-only journal file sitting *next to* the paged
//! data file. Each record is individually CRC-sealed (reusing the page
//! checksum polynomial, [`crate::page::crc32`]), so a reader can always
//! recover the longest valid prefix of a torn journal: a crash mid-append
//! loses at most the record being written, never an earlier one.
//!
//! The write protocol makes referenced pages durable *before* the record
//! that points at them:
//!
//! 1. flush dirty pages ([`crate::StorageEngine::flush_all`]),
//! 2. `fsync` the data file ([`crate::StorageEngine::sync`]),
//! 3. append the manifest record,
//! 4. `fsync` the manifest.
//!
//! [`Checkpointer::checkpoint`] performs exactly that sequence and then
//! visits the named [`crate::fault::FaultPlan`] crash point, so seeded
//! crash tests abort precisely *after* a checkpoint is durable.
//!
//! Atomicity granule: one record. Multi-file transitions (a merge output
//! replacing its consumed runs) are therefore a *single*
//! [`ManifestRecord::FileSealed`] whose `replaces` list retires the
//! consumed files — a torn tail either has the whole transition or none
//! of it, never a state where both the merge output and its inputs look
//! live.

use crate::file::RecordFile;
use crate::page::{crc32, PageId};
use crate::StorageEngine;
use hdsj_core::{Error, LifecycleCtx, Result};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Manifest format version, stored in the [`ManifestRecord::Start`] record.
pub const MANIFEST_VERSION: u32 = 1;

/// Upper bound on a single record's payload; anything larger is treated as
/// a torn/corrupt tail rather than an attempt to allocate gigabytes.
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

const TAG_START: u8 = 1;
const TAG_FILE_SEALED: u8 = 2;
const TAG_FILE_DROPPED: u8 = 3;
const TAG_MARK: u8 = 4;

/// One journal entry. See the module docs for the durability protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestRecord {
    /// First record of every manifest: format version plus a fingerprint
    /// of the query parameters, so a resume with different parameters is
    /// rejected instead of producing silently different results.
    Start { version: u32, fingerprint: u64 },
    /// A [`RecordFile`] is complete and its pages are durable. `replaces`
    /// atomically retires earlier files consumed to produce this one.
    FileSealed {
        tag: String,
        record_len: u32,
        len: u64,
        pages: Vec<PageId>,
        replaces: Vec<String>,
    },
    /// A sealed file is no longer needed (its pages become orphans that
    /// the next resume returns to the freelist).
    FileDropped { tag: String },
    /// A named progress marker (phase flags, counters).
    Mark { name: String, value: u64 },
}

impl ManifestRecord {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            ManifestRecord::Start {
                version,
                fingerprint,
            } => {
                p.push(TAG_START);
                p.extend_from_slice(&version.to_le_bytes());
                p.extend_from_slice(&fingerprint.to_le_bytes());
            }
            ManifestRecord::FileSealed {
                tag,
                record_len,
                len,
                pages,
                replaces,
            } => {
                p.push(TAG_FILE_SEALED);
                put_str(&mut p, tag);
                p.extend_from_slice(&record_len.to_le_bytes());
                p.extend_from_slice(&len.to_le_bytes());
                p.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for &pg in pages {
                    p.extend_from_slice(&pg.to_le_bytes());
                }
                p.extend_from_slice(&(replaces.len() as u32).to_le_bytes());
                for r in replaces {
                    put_str(&mut p, r);
                }
            }
            ManifestRecord::FileDropped { tag } => {
                p.push(TAG_FILE_DROPPED);
                put_str(&mut p, tag);
            }
            ManifestRecord::Mark { name, value } => {
                p.push(TAG_MARK);
                put_str(&mut p, name);
                p.extend_from_slice(&value.to_le_bytes());
            }
        }
        p
    }

    fn decode(payload: &[u8]) -> Result<ManifestRecord> {
        let mut c = Decoder { buf: payload };
        let rec = match c.u8()? {
            TAG_START => ManifestRecord::Start {
                version: c.u32()?,
                fingerprint: c.u64()?,
            },
            TAG_FILE_SEALED => {
                let tag = c.str()?;
                let record_len = c.u32()?;
                let len = c.u64()?;
                let n = c.u32()? as usize;
                let mut pages = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    pages.push(c.u64()?);
                }
                let m = c.u32()? as usize;
                let mut replaces = Vec::with_capacity(m.min(1 << 10));
                for _ in 0..m {
                    replaces.push(c.str()?);
                }
                ManifestRecord::FileSealed {
                    tag,
                    record_len,
                    len,
                    pages,
                    replaces,
                }
            }
            TAG_FILE_DROPPED => ManifestRecord::FileDropped { tag: c.str()? },
            TAG_MARK => ManifestRecord::Mark {
                name: c.str()?,
                value: c.u64()?,
            },
            t => {
                return Err(Error::Corruption(format!(
                    "manifest record with unknown type tag {t}"
                )))
            }
        };
        if !c.buf.is_empty() {
            return Err(Error::Corruption(
                "manifest record has trailing bytes".into(),
            ));
        }
        Ok(rec)
    }
}

fn put_str(p: &mut Vec<u8>, s: &str) {
    p.extend_from_slice(&(s.len() as u16).to_le_bytes());
    p.extend_from_slice(s.as_bytes());
}

struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Corruption("manifest record truncated".into()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(
            |_| Error::Corruption("manifest u32 truncated".into()),
        )?))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().map_err(
            |_| Error::Corruption("manifest u64 truncated".into()),
        )?))
    }
    fn str(&mut self) -> Result<String> {
        let n = u16::from_le_bytes(
            self.take(2)?
                .try_into()
                .map_err(|_| Error::Corruption("manifest string length truncated".into()))?,
        ) as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corruption("manifest string is not UTF-8".into()))
    }
}

/// The journal file: append + fsync. Reading happens once, at open.
pub struct Manifest {
    file: File,
}

impl Manifest {
    /// Creates (truncating) a manifest and writes its [`ManifestRecord::Start`]
    /// record. The start record is synced immediately so a resume can
    /// always validate the fingerprint.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Manifest> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut m = Manifest { file };
        m.append(&ManifestRecord::Start {
            version: MANIFEST_VERSION,
            fingerprint,
        })?;
        m.sync()?;
        Ok(m)
    }

    /// Opens an existing manifest, returning its valid record prefix. A
    /// torn or corrupt tail (bad CRC, truncated length, oversized payload)
    /// is *truncated away* so subsequent appends extend the valid prefix.
    pub fn open_append(path: &Path) -> Result<(Manifest, Vec<ManifestRecord>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes([
                bytes[pos],
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
            ]);
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if len > MAX_PAYLOAD || bytes.len() - pos - 8 < len as usize {
                break; // torn tail
            }
            let payload = &bytes[pos + 8..pos + 8 + len as usize];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            match ManifestRecord::decode(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break, // valid CRC but undecodable: stop here too
            }
            pos += 8 + len as usize;
        }
        if pos < bytes.len() {
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((Manifest { file }, records))
    }

    /// Appends one record (CRC-sealed). Not durable until [`Manifest::sync`].
    pub fn append(&mut self, rec: &ManifestRecord) -> Result<()> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// Forces appended records to durable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

/// A sealed file as the manifest describes it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileSpec {
    /// Record length in bytes.
    pub record_len: usize,
    /// Number of records.
    pub len: u64,
    /// Page directory, in file order.
    pub pages: Vec<PageId>,
}

impl FileSpec {
    /// Reconstructs the [`RecordFile`] this spec describes on `engine`.
    pub fn open(&self, engine: &StorageEngine) -> Result<RecordFile> {
        RecordFile::from_parts(engine, self.record_len, self.pages.clone(), self.len)
    }
}

/// The state a replayed manifest describes: which files are live, which
/// markers were reached.
#[derive(Clone, Debug, Default)]
pub struct ManifestState {
    /// Fingerprint from the start record, if present.
    pub fingerprint: Option<u64>,
    /// Live (sealed, not dropped/replaced) files by tag.
    pub files: BTreeMap<String, FileSpec>,
    /// Latest value of each mark.
    pub marks: BTreeMap<String, u64>,
}

impl ManifestState {
    /// Folds a record sequence (from [`Manifest::open_append`]) into the
    /// state it describes.
    pub fn replay(records: &[ManifestRecord]) -> Result<ManifestState> {
        let mut st = ManifestState::default();
        for (i, rec) in records.iter().enumerate() {
            match rec {
                ManifestRecord::Start {
                    version,
                    fingerprint,
                } => {
                    if i != 0 {
                        return Err(Error::Corruption(
                            "manifest start record not first".into(),
                        ));
                    }
                    if *version != MANIFEST_VERSION {
                        return Err(Error::Unsupported(format!(
                            "manifest version {version} (this build reads {MANIFEST_VERSION})"
                        )));
                    }
                    st.fingerprint = Some(*fingerprint);
                }
                ManifestRecord::FileSealed {
                    tag,
                    record_len,
                    len,
                    pages,
                    replaces,
                } => {
                    for r in replaces {
                        st.files.remove(r);
                    }
                    st.files.insert(
                        tag.clone(),
                        FileSpec {
                            record_len: *record_len as usize,
                            len: *len,
                            pages: pages.clone(),
                        },
                    );
                }
                ManifestRecord::FileDropped { tag } => {
                    st.files.remove(tag);
                }
                ManifestRecord::Mark { name, value } => {
                    st.marks.insert(name.clone(), *value);
                }
            }
        }
        Ok(st)
    }

    /// Pages referenced by some live file.
    pub fn live_pages(&self) -> std::collections::BTreeSet<PageId> {
        self.files
            .values()
            .flat_map(|f| f.pages.iter().copied())
            .collect()
    }

    /// Pages of the reopened data file that no live file references —
    /// leftovers of in-flight work at the crash. Feed the result to
    /// [`StorageEngine::adopt_freelist`] so a resumed run reuses them
    /// instead of growing the disk, and so the leak check holds.
    pub fn orphan_pages(&self, num_pages: u64) -> Vec<PageId> {
        let live = self.live_pages();
        (0..num_pages).filter(|p| !live.contains(p)).collect()
    }

    /// Live file tags starting with `prefix`, in tag order.
    pub fn files_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a String, &'a FileSpec)> + 'a {
        self.files
            .iter()
            .filter(move |(tag, _)| tag.starts_with(prefix))
    }
}

/// Drives the checkpoint protocol: flush → fsync data → append → fsync
/// manifest → visit the fault plan's crash point. Owned by the resumable
/// join; phases call [`Checkpointer::seal_file`] / [`Checkpointer::mark`]
/// at their boundaries.
pub struct Checkpointer {
    engine: StorageEngine,
    manifest: Manifest,
    lifecycle: Option<LifecycleCtx>,
    /// Test hook: return [`Error::Canceled`] the `n`-th time the named
    /// checkpoint completes, *after* it is durable — an in-process stand-in
    /// for a crash that lets property tests exercise resume without
    /// aborting the test runner.
    halt: Option<(String, u64)>,
}

impl Checkpointer {
    /// Wraps `manifest` for checkpointing work on `engine`.
    pub fn new(engine: &StorageEngine, manifest: Manifest) -> Checkpointer {
        Checkpointer {
            engine: engine.clone(),
            manifest,
            lifecycle: None,
            halt: None,
        }
    }

    /// Counts checkpoints in this lifecycle context (and polls it, so a
    /// canceled query stops at the next checkpoint even if the phase
    /// between checkpoints performs no pool I/O).
    pub fn with_lifecycle(mut self, ctx: LifecycleCtx) -> Checkpointer {
        self.lifecycle = Some(ctx);
        self
    }

    /// Arms the in-process halt hook: the `n`-th completion of checkpoint
    /// `point` returns [`Error::Canceled`] after the record is durable.
    pub fn halt_at(&mut self, point: &str, n: u64) {
        self.halt = Some((point.to_string(), n.max(1)));
    }

    /// The checkpoint sequence for one record. `point` names the crash
    /// point visited after the record is durable (see
    /// [`crate::fault::FaultPlan::crash_at`]).
    pub fn checkpoint(&mut self, point: &str, rec: &ManifestRecord) -> Result<()> {
        self.engine.flush_all()?;
        self.engine.sync()?;
        self.manifest.append(rec)?;
        self.manifest.sync()?;
        if let Some(lc) = &self.lifecycle {
            lc.note_checkpoint();
            lc.poll()?;
        }
        self.engine.fault_plan().crash_point(point);
        if let Some((name, n)) = &mut self.halt {
            if name == point {
                *n -= 1;
                if *n == 0 {
                    self.halt = None;
                    return Err(Error::Canceled(format!(
                        "halt injected at checkpoint `{point}`"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Seals `file` under `tag`, atomically retiring the tags in
    /// `replaces`. The file's tail pin must already be released.
    pub fn seal_file(
        &mut self,
        point: &str,
        tag: &str,
        file: &RecordFile,
        replaces: &[String],
    ) -> Result<()> {
        self.checkpoint(
            point,
            &ManifestRecord::FileSealed {
                tag: tag.to_string(),
                record_len: file.record_len() as u32,
                len: file.len(),
                pages: file.page_ids().to_vec(),
                replaces: replaces.to_vec(),
            },
        )
    }

    /// Records that the file sealed under `tag` is no longer needed.
    pub fn drop_file(&mut self, point: &str, tag: &str) -> Result<()> {
        self.checkpoint(
            point,
            &ManifestRecord::FileDropped {
                tag: tag.to_string(),
            },
        )
    }

    /// Records a progress marker.
    pub fn mark(&mut self, point: &str, name: &str, value: u64) -> Result<()> {
        self.checkpoint(
            point,
            &ManifestRecord::Mark {
                name: name.to_string(),
                value,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsj-man-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<ManifestRecord> {
        vec![
            ManifestRecord::FileSealed {
                tag: "sort.l0.run.0".into(),
                record_len: 16,
                len: 1000,
                pages: vec![3, 4, 7],
                replaces: vec![],
            },
            ManifestRecord::Mark {
                name: "assign_done".into(),
                value: 1,
            },
            ManifestRecord::FileSealed {
                tag: "sort.l0.out".into(),
                record_len: 16,
                len: 1000,
                pages: vec![1, 2],
                replaces: vec!["sort.l0.run.0".into()],
            },
            ManifestRecord::FileDropped {
                tag: "sort.l0.out".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_encoding() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(ManifestRecord::decode(&payload).unwrap(), rec);
        }
        let start = ManifestRecord::Start {
            version: MANIFEST_VERSION,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        };
        assert_eq!(ManifestRecord::decode(&start.encode()).unwrap(), start);
    }

    #[test]
    fn journal_round_trips_and_reopens() {
        let dir = temp_dir("rt");
        let path = dir.join("m.journal");
        {
            let mut m = Manifest::create(&path, 42).unwrap();
            for rec in sample_records() {
                m.append(&rec).unwrap();
            }
            m.sync().unwrap();
        }
        let (_m, records) = Manifest::open_append(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(
            records[0],
            ManifestRecord::Start {
                version: MANIFEST_VERSION,
                fingerprint: 42
            }
        );
        assert_eq!(&records[1..], &sample_records()[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = temp_dir("torn");
        let path = dir.join("m.journal");
        {
            let mut m = Manifest::create(&path, 7).unwrap();
            m.append(&ManifestRecord::Mark {
                name: "a".into(),
                value: 1,
            })
            .unwrap();
            m.sync().unwrap();
        }
        // Tear the tail: append half a frame's worth of garbage.
        let full_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 9]).unwrap();
        }
        let (mut m, records) = Manifest::open_append(&path).unwrap();
        assert_eq!(records.len(), 2, "valid prefix survives");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        // Appends now extend the valid prefix.
        m.append(&ManifestRecord::Mark {
            name: "b".into(),
            value: 2,
        })
        .unwrap();
        m.sync().unwrap();
        drop(m);
        let (_m, records) = Manifest::open_append(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[2],
            ManifestRecord::Mark {
                name: "b".into(),
                value: 2
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_crc_stops_the_replay_prefix() {
        let dir = temp_dir("crc");
        let path = dir.join("m.journal");
        {
            let mut m = Manifest::create(&path, 7).unwrap();
            m.append(&ManifestRecord::Mark {
                name: "a".into(),
                value: 1,
            })
            .unwrap();
            m.append(&ManifestRecord::Mark {
                name: "b".into(),
                value: 2,
            })
            .unwrap();
            m.sync().unwrap();
        }
        // Flip a byte in the *last* record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_m, records) = Manifest::open_append(&path).unwrap();
        assert_eq!(records.len(), 2, "corrupt record and everything after cut");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_tracks_live_files_marks_and_orphans() {
        let mut records = vec![ManifestRecord::Start {
            version: MANIFEST_VERSION,
            fingerprint: 9,
        }];
        records.extend(sample_records());
        let st = ManifestState::replay(&records).unwrap();
        assert_eq!(st.fingerprint, Some(9));
        // run.0 was replaced, out was dropped: nothing live.
        assert!(st.files.is_empty());
        assert_eq!(st.marks.get("assign_done"), Some(&1));
        assert_eq!(st.orphan_pages(5), vec![0, 1, 2, 3, 4]);

        // Without the drop, `out` is live and owns pages 1 and 2.
        let st = ManifestState::replay(&records[..4]).unwrap();
        assert_eq!(st.files.len(), 1);
        assert_eq!(st.files["sort.l0.out"].pages, vec![1, 2]);
        assert_eq!(st.orphan_pages(5), vec![0, 3, 4]);
        assert_eq!(
            st.files_with_prefix("sort.l0.").count(),
            1,
            "prefix filter sees the live sorted file"
        );
    }

    #[test]
    fn replay_rejects_misplaced_start_and_bad_version() {
        let misplaced = vec![
            ManifestRecord::Mark {
                name: "a".into(),
                value: 1,
            },
            ManifestRecord::Start {
                version: MANIFEST_VERSION,
                fingerprint: 1,
            },
        ];
        assert!(ManifestState::replay(&misplaced).is_err());
        let future = vec![ManifestRecord::Start {
            version: MANIFEST_VERSION + 1,
            fingerprint: 1,
        }];
        assert!(matches!(
            ManifestState::replay(&future),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn checkpointer_seals_durable_state_and_honors_halt() {
        let dir = temp_dir("ckpt");
        let data = dir.join("m.pages");
        let path = dir.join("m.journal");
        let eng = StorageEngine::file_backed(&data, 8).unwrap();
        let mut file = RecordFile::create(&eng, 8).unwrap();
        for i in 0..20u64 {
            file.push(&i.to_le_bytes()).unwrap();
        }
        file.release_tail();

        let lc = hdsj_core::LifecycleCtx::unbounded();
        let mut ck = Checkpointer::new(&eng, Manifest::create(&path, 5).unwrap())
            .with_lifecycle(lc.clone());
        ck.halt_at("p.two", 1);
        ck.seal_file("p.one", "data", &file, &[]).unwrap();
        let err = ck.mark("p.two", "done", 1).unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err:?}");
        assert_eq!(lc.stats().checkpoints, 2, "halt fires after durability");
        drop(ck);
        drop(file);
        drop(eng);

        // A fresh process sees the sealed file *and* the halted mark.
        let (_m, records) = Manifest::open_append(&path).unwrap();
        let st = ManifestState::replay(&records).unwrap();
        assert_eq!(st.fingerprint, Some(5));
        assert_eq!(st.marks.get("done"), Some(&1));
        let eng = StorageEngine::builder(8).file_backed_open(&data).unwrap();
        eng.adopt_freelist(st.orphan_pages(eng.pool().num_pages()))
            .unwrap();
        let back = st.files["data"].open(&eng).unwrap();
        let recs = back.read_all().unwrap();
        assert_eq!(recs.len(), 20);
        assert_eq!(recs[19], 19u64.to_le_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Disk-resident point collections.
//!
//! A [`PointFile`] stores a dataset in storage-engine pages (one header
//! page + packed coordinate pages), which lets joins run against inputs
//! that notionally do not fit in memory, with every access counted by the
//! buffer pool. The block nested-loops join over two `PointFile`s
//! ([`disk_block_nested_loops`]) is the measured disk baseline of the
//! I/O experiments: `O(pages(A) · pages(B) / buffer)` page reads, the
//! classic quadratic disk cost the filter algorithms are built to avoid.

use crate::file::RecordFile;
use crate::{PageId, StorageEngine};
use hdsj_core::{
    Dataset, Error, IoCounters, JoinKind, JoinSpec, JoinStats, PairSink, PhaseTimer, Result,
};

/// A dataset stored in pages: fixed-size records of `d` little-endian
/// `f64`s, in insertion order (record index = point id).
pub struct PointFile {
    file: RecordFile,
    dims: usize,
    engine: StorageEngine,
}

impl PointFile {
    /// Writes `ds` to a new point file on `engine`.
    pub fn from_dataset(engine: &StorageEngine, ds: &Dataset) -> Result<PointFile> {
        // A point record must fit beside the page's storage header and the
        // record file's count word.
        if ds.dims() * 8 > crate::PAGE_SIZE - crate::PAGE_HEADER - 8 {
            return Err(Error::Unsupported(format!(
                "points of d={} exceed one page",
                ds.dims()
            )));
        }
        let mut file = RecordFile::create(engine, ds.dims() * 8)?;
        let mut rec = Vec::with_capacity(ds.dims() * 8);
        for (_, p) in ds.iter() {
            rec.clear();
            for &v in p {
                rec.extend_from_slice(&v.to_le_bytes());
            }
            file.push(&rec)?;
        }
        file.release_tail();
        Ok(PointFile {
            file,
            dims: ds.dims(),
            engine: engine.clone(),
        })
    }

    /// Number of points.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True when the file holds no points.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Pages the coordinates occupy.
    pub fn num_pages(&self) -> usize {
        self.file.num_pages()
    }

    /// Points per page.
    pub fn points_per_page(&self) -> usize {
        self.file.records_per_page()
    }

    /// Reads the whole file back into a [`Dataset`] (goes through the
    /// buffer pool, so it is counted I/O).
    pub fn to_dataset(&self) -> Result<Dataset> {
        let mut ds = Dataset::with_capacity(self.dims, self.len() as usize)
            .map_err(|e| Error::InvalidInput(e.to_string()))?;
        let mut cursor = self.file.cursor();
        let mut point = vec![0.0f64; self.dims];
        while let Some(rec) = cursor.next()? {
            decode_point(rec, &mut point);
            ds.push(&point)?;
        }
        Ok(ds)
    }

    /// Reads one block of points starting at record `start`, at most
    /// `count` points, appending `(id, coords)` into `out`. Returns how many
    /// points were read.
    pub fn read_block(
        &self,
        start: u64,
        count: usize,
        out: &mut Vec<(u32, Vec<f64>)>,
    ) -> Result<usize> {
        out.clear();
        let mut cursor = self.file.cursor_at(start);
        let mut idx = start;
        let mut point = vec![0.0f64; self.dims];
        while out.len() < count {
            match cursor.next()? {
                Some(rec) => {
                    decode_point(rec, &mut point);
                    out.push((idx as u32, point.clone()));
                    idx += 1;
                }
                None => break,
            }
        }
        Ok(out.len())
    }

    /// The storage engine the file lives on.
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// First page id (for diagnostics).
    pub fn first_page(&self) -> Option<PageId> {
        if self.file.num_pages() > 0 {
            Some(0)
        } else {
            None
        }
    }
}

fn decode_point(rec: &[u8], out: &mut [f64]) {
    for (v, chunk) in out.iter_mut().zip(rec.chunks_exact(8)) {
        let mut b = [0u8; 8];
        b.copy_from_slice(chunk);
        *v = f64::from_le_bytes(b);
    }
}

/// Disk block nested-loops ε-join over two point files: the measured
/// quadratic baseline. `block_points` is the number of *outer* points held
/// in memory per pass (the classic memory-for-I/O trade: each pass scans
/// the whole inner file once).
pub fn disk_block_nested_loops(
    a: &PointFile,
    b: &PointFile,
    kind: JoinKind,
    spec: &JoinSpec,
    block_points: usize,
    sink: &mut dyn PairSink,
) -> Result<JoinStats> {
    spec.validate()?;
    if a.dims() != b.dims() {
        return Err(Error::InvalidInput(format!(
            "dimensionality mismatch: {} vs {}",
            a.dims(),
            b.dims()
        )));
    }
    let engine = a.engine().clone();
    let io_before = engine.io_counters();
    let mut phases = Vec::new();
    let timer = PhaseTimer::start("join");

    // The refiner needs materialized datasets for exact distances; BNL
    // streams them block by block instead, so run refinement inline.
    let block_points = block_points.max(1);
    let mut outer: Vec<(u32, Vec<f64>)> = Vec::with_capacity(block_points);
    let mut inner: Vec<(u32, Vec<f64>)> = Vec::with_capacity(block_points);
    let mut stats = JoinStats::default();
    let mut start_a = 0u64;
    loop {
        let got = a.read_block(start_a, block_points, &mut outer)?;
        if got == 0 {
            break;
        }
        let mut start_b = match kind {
            JoinKind::TwoSets => 0,
            // Self-join: the inner scan starts at the outer block (pairs
            // within and after it), halving the work.
            JoinKind::SelfJoin => start_a,
        };
        loop {
            let got_b = b.read_block(start_b, block_points, &mut inner)?;
            if got_b == 0 {
                break;
            }
            for (i, pa) in &outer {
                for (j, pb) in &inner {
                    let (i, j) = match kind {
                        JoinKind::TwoSets => (*i, *j),
                        JoinKind::SelfJoin => {
                            if *j <= *i {
                                continue;
                            }
                            (*i, *j)
                        }
                    };
                    stats.candidates += 1;
                    stats.dist_evals += 1;
                    if spec.metric.within(pa, pb, spec.eps) {
                        stats.results += 1;
                        sink.push(i, j);
                    }
                }
            }
            start_b += got_b as u64;
        }
        start_a += got as u64;
    }

    timer.finish(&mut phases);
    stats.phases = phases;
    let io_after = engine.io_counters();
    stats.io = IoCounters::diff(&io_after, &io_before);
    stats.structure_bytes = (block_points * (a.dims() * 8 + 16)) as u64 * 2;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::{Refiner, VecSink};

    fn dataset(dims: usize, n: usize, seed: u64) -> Dataset {
        // Simple deterministic pseudo-random points without pulling rand in.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dims).unwrap();
        for _ in 0..n {
            let p: Vec<f64> = (0..dims).map(|_| next().min(1.0 - 1e-12)).collect();
            ds.push(&p).unwrap();
        }
        ds
    }

    #[test]
    fn round_trip_through_point_file() {
        let eng = StorageEngine::in_memory(16);
        let ds = dataset(5, 321, 1);
        let pf = PointFile::from_dataset(&eng, &ds).unwrap();
        assert_eq!(pf.len(), 321);
        assert_eq!(pf.dims(), 5);
        assert_eq!(pf.to_dataset().unwrap(), ds);
    }

    #[test]
    fn read_block_pagination() {
        let eng = StorageEngine::in_memory(16);
        let ds = dataset(3, 25, 2);
        let pf = PointFile::from_dataset(&eng, &ds).unwrap();
        let mut out = Vec::new();
        assert_eq!(pf.read_block(0, 10, &mut out).unwrap(), 10);
        assert_eq!(out[0].0, 0);
        assert_eq!(pf.read_block(20, 10, &mut out).unwrap(), 5);
        assert_eq!(out[0].0, 20);
        assert_eq!(out[4].1, ds.point(24));
        assert_eq!(pf.read_block(25, 10, &mut out).unwrap(), 0);
    }

    #[test]
    fn rejects_points_wider_than_a_page() {
        let eng = StorageEngine::in_memory(4);
        let ds = Dataset::new(2000).unwrap();
        assert!(PointFile::from_dataset(&eng, &ds).is_err());
    }

    #[test]
    fn disk_bnl_matches_in_memory_brute_force() {
        let eng = StorageEngine::in_memory(8);
        let ds = dataset(4, 300, 3);
        let pf = PointFile::from_dataset(&eng, &ds).unwrap();
        let spec = JoinSpec::l2(0.25);

        let mut want = VecSink::default();
        {
            use hdsj_core::SimilarityJoin;
            let mut bf = TestBf;
            bf.self_join(&ds, &spec, &mut want).unwrap();
        }
        let mut got = VecSink::default();
        disk_block_nested_loops(&pf, &pf, JoinKind::SelfJoin, &spec, 64, &mut got).unwrap();
        hdsj_core::verify::assert_same_results("disk BNL", &want.pairs, &got.pairs);
    }

    #[test]
    fn disk_bnl_two_set_join() {
        let eng = StorageEngine::in_memory(8);
        let a = dataset(3, 120, 4);
        let b = dataset(3, 90, 5);
        let pfa = PointFile::from_dataset(&eng, &a).unwrap();
        let pfb = PointFile::from_dataset(&eng, &b).unwrap();
        let spec = JoinSpec::l2(0.2);
        let mut got = VecSink::default();
        let stats = disk_block_nested_loops(&pfa, &pfb, JoinKind::TwoSets, &spec, 50, &mut got)
            .unwrap();
        assert_eq!(stats.candidates, 120 * 90);
        // Oracle: in-memory nested loops.
        let mut want = Vec::new();
        for (i, pa) in a.iter() {
            for (j, pb) in b.iter() {
                if spec.metric.within(pa, pb, spec.eps) {
                    want.push((i, j));
                }
            }
        }
        hdsj_core::verify::assert_same_results("disk BNL two-set", &want, &got.pairs);
    }

    #[test]
    fn smaller_blocks_mean_more_io() {
        let eng_small = StorageEngine::in_memory(4);
        let ds = dataset(6, 2000, 6);
        let pf = PointFile::from_dataset(&eng_small, &ds).unwrap();
        let spec = JoinSpec::l2(0.1);
        let mut sink = hdsj_core::CountSink::default();
        let io_small =
            disk_block_nested_loops(&pf, &pf, JoinKind::SelfJoin, &spec, 50, &mut sink)
                .unwrap()
                .io
                .reads;
        let io_large =
            disk_block_nested_loops(&pf, &pf, JoinKind::SelfJoin, &spec, 1000, &mut sink)
                .unwrap()
                .io
                .reads;
        assert!(
            io_small > 2 * io_large,
            "block 50 reads {io_small}, block 1000 reads {io_large}"
        );
    }

    /// Minimal in-crate brute force used as the test oracle (the real one
    /// lives in `hdsj-bruteforce`, which depends on this crate's siblings).
    struct TestBf;
    impl hdsj_core::SimilarityJoin for TestBf {
        fn name(&self) -> &'static str {
            "TESTBF"
        }
        fn join(
            &mut self,
            a: &Dataset,
            b: &Dataset,
            spec: &JoinSpec,
            sink: &mut dyn PairSink,
        ) -> Result<JoinStats> {
            let mut r = Refiner::new(a, b, JoinKind::TwoSets, spec, sink);
            for (i, _) in a.iter() {
                for (j, _) in b.iter() {
                    r.offer(i, j);
                }
            }
            Ok(r.finish(JoinStats::default()))
        }
        fn self_join(
            &mut self,
            a: &Dataset,
            spec: &JoinSpec,
            sink: &mut dyn PairSink,
        ) -> Result<JoinStats> {
            let mut r = Refiner::new(a, a, JoinKind::SelfJoin, spec, sink);
            for (i, _) in a.iter() {
                for j in i + 1..a.len() as u32 {
                    r.offer(i, j);
                }
            }
            Ok(r.finish(JoinStats::default()))
        }
    }
}

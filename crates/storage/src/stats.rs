//! Shared I/O counters with fault injection.

use hdsj_core::IoCounters;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Atomic page-transfer counters shared between a disk, its buffer pool,
/// and any number of engine clones. Also hosts the fault-injection trigger
/// used by the failure-path tests: when armed with `n`, the `n`-th
/// subsequent disk operation reports a fault.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    /// Remaining operations until an injected fault; negative = disarmed.
    fault_in: AtomicI64,
}

impl IoStats {
    /// Records a page read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page allocation.
    pub fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool fetch served from a resident page.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool eviction (any victim, clean or dirty).
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dirty eviction that forced a write-back.
    pub fn record_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Fraction of pool fetches served from memory (0 before any fetch).
    pub fn hit_rate(&self) -> f64 {
        self.snapshot().hit_rate()
    }

    /// Snapshot in `hdsj-core` form.
    pub fn snapshot(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (fault trigger is unaffected).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    /// Arms (`Some(n)`: fault on the n-th next operation, 1-based) or
    /// disarms (`None`) fault injection.
    pub fn set_fault_after(&self, n: Option<u64>) {
        self.fault_in
            .store(n.map(|v| v as i64).unwrap_or(-1), Ordering::Relaxed);
    }

    /// Called by disks before each operation; `true` means "fail now".
    pub fn should_fault(&self) -> bool {
        // Only decrement while armed; avoid wrapping when disarmed.
        let mut cur = self.fault_in.load(Ordering::Relaxed);
        loop {
            if cur <= 0 {
                return false;
            }
            match self.fault_in.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(prev) => return prev == 1,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::default();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_eviction();
        s.record_writeback();
        let snap = s.snapshot();
        assert_eq!((snap.reads, snap.writes, snap.allocs), (2, 1, 1));
        assert_eq!((snap.hits, snap.evictions, snap.writebacks), (3, 1, 1));
        assert!((s.hit_rate() - 0.6).abs() < 1e-12, "3 hits / 5 accesses");
        s.reset();
        assert_eq!(s.snapshot(), IoCounters::default());
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn fault_fires_exactly_on_nth_operation() {
        let s = IoStats::default();
        assert!(!s.should_fault(), "disarmed by default");
        s.set_fault_after(Some(3));
        assert!(!s.should_fault());
        assert!(!s.should_fault());
        assert!(s.should_fault(), "third op faults");
        assert!(!s.should_fault(), "trigger disarms after firing");
    }

    #[test]
    fn disarming_clears_pending_fault() {
        let s = IoStats::default();
        s.set_fault_after(Some(1));
        s.set_fault_after(None);
        assert!(!s.should_fault());
    }
}

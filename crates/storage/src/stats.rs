//! Shared I/O and fault counters.

use hdsj_core::IoCounters;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic page-transfer counters shared between a disk, its buffer pool,
/// and any number of engine clones. Besides the plain I/O traffic it
/// counts the failure-model events: faults the injection layer delivered,
/// operations the pool retried, and checksum mismatches it detected.
/// (Fault *scheduling* lives in [`crate::fault::FaultPlan`]; this type
/// only observes.)
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    corruptions: AtomicU64,
}

impl IoStats {
    /// Records a page read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page allocation.
    pub fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool fetch served from a resident page.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool eviction (any victim, clean or dirty).
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dirty eviction that forced a write-back.
    pub fn record_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of a transiently failed disk operation.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delivered injected fault.
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page that failed checksum verification.
    pub fn record_corruption(&self) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Fraction of pool fetches served from memory (0 before any fetch).
    pub fn hit_rate(&self) -> f64 {
        self.snapshot().hit_rate()
    }

    /// Snapshot in `hdsj-core` form.
    pub fn snapshot(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.corruptions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::default();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_eviction();
        s.record_writeback();
        s.record_retry();
        s.record_fault();
        s.record_corruption();
        let snap = s.snapshot();
        assert_eq!((snap.reads, snap.writes, snap.allocs), (2, 1, 1));
        assert_eq!((snap.hits, snap.evictions, snap.writebacks), (3, 1, 1));
        assert_eq!((snap.retries, snap.faults, snap.corruptions), (1, 1, 1));
        assert!((s.hit_rate() - 0.6).abs() < 1e-12, "3 hits / 5 accesses");
        s.reset();
        assert_eq!(s.snapshot(), IoCounters::default());
        assert_eq!(s.hit_rate(), 0.0);
    }
}

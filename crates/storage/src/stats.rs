//! Shared I/O and fault counters, plus per-operation latency histograms.

use hdsj_core::IoCounters;
use hdsj_obs::{names, Histogram, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic page-transfer counters shared between a disk, its buffer pool,
/// and any number of engine clones. Besides the plain I/O traffic it
/// counts the failure-model events: faults the injection layer delivered,
/// operations the pool retried, and checksum mismatches it detected.
/// (Fault *scheduling* lives in [`crate::fault::FaultPlan`]; this type
/// only observes.)
///
/// Reads, writes, and write-backs also feed lock-free latency histograms
/// (nanoseconds); [`IoStats::record_latency_metrics`] folds them into a
/// tracer's registry under the `pool.*_ns` names.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    corruptions: AtomicU64,
    read_ns: Histogram,
    write_ns: Histogram,
    writeback_ns: Histogram,
}

impl IoStats {
    /// Records a page read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page read that took `elapsed`.
    pub fn record_read_timed(&self, elapsed: Duration) {
        self.record_read();
        self.read_ns.record_duration(elapsed);
    }

    /// Records a page write.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write that took `elapsed`.
    pub fn record_write_timed(&self, elapsed: Duration) {
        self.record_write();
        self.write_ns.record_duration(elapsed);
    }

    /// Records a page allocation.
    pub fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool fetch served from a resident page.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool eviction (any victim, clean or dirty).
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dirty eviction that forced a write-back.
    pub fn record_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write-back that took `elapsed`.
    pub fn record_writeback_timed(&self, elapsed: Duration) {
        self.record_writeback();
        self.writeback_ns.record_duration(elapsed);
    }

    /// Records one retry of a transiently failed disk operation.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delivered injected fault.
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page that failed checksum verification.
    pub fn record_corruption(&self) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Fraction of pool fetches served from memory (0 before any fetch).
    pub fn hit_rate(&self) -> f64 {
        self.snapshot().hit_rate()
    }

    /// Snapshot in `hdsj-core` form.
    pub fn snapshot(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }

    /// Folds the latency histograms into `tracer`'s registry under
    /// [`names::POOL_READ_NS`] / [`names::POOL_WRITE_NS`] /
    /// [`names::POOL_WRITEBACK_NS`]. The shared-cell companion of
    /// `IoCounters::record_counters`; call once at the end of a traced
    /// run.
    pub fn record_latency_metrics(&self, tracer: &Tracer) {
        if !tracer.enabled() {
            return;
        }
        tracer
            .histogram(names::POOL_READ_NS)
            .merge(&self.read_ns.snapshot());
        tracer
            .histogram(names::POOL_WRITE_NS)
            .merge(&self.write_ns.snapshot());
        tracer
            .histogram(names::POOL_WRITEBACK_NS)
            .merge(&self.writeback_ns.snapshot());
    }

    /// Read-latency distribution so far (nanoseconds).
    pub fn read_latency(&self) -> hdsj_obs::HistogramSnapshot {
        self.read_ns.snapshot()
    }

    /// Zeroes the counters and latency histograms.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.corruptions.store(0, Ordering::Relaxed);
        self.read_ns.reset();
        self.write_ns.reset();
        self.writeback_ns.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_records_feed_latency_histograms() {
        let s = IoStats::default();
        s.record_read_timed(Duration::from_nanos(500));
        s.record_read_timed(Duration::from_micros(20));
        s.record_write_timed(Duration::from_nanos(800));
        s.record_writeback_timed(Duration::from_micros(3));
        assert_eq!(s.snapshot().reads, 2);
        assert_eq!(s.read_latency().count, 2);
        assert_eq!(s.read_latency().min, 500);

        let (tracer, sink) = hdsj_obs::Tracer::memory();
        s.record_latency_metrics(&tracer);
        tracer.flush();
        let read = sink.hist_snapshot(names::POOL_READ_NS).unwrap();
        assert_eq!(read.count, 2);
        assert_eq!(sink.hist_snapshot(names::POOL_WRITE_NS).unwrap().count, 1);
        assert_eq!(
            sink.hist_snapshot(names::POOL_WRITEBACK_NS).unwrap().count,
            1
        );
        // Disabled tracer: no-op, and reset clears the distributions.
        s.record_latency_metrics(&hdsj_obs::Tracer::disabled());
        s.reset();
        assert_eq!(s.read_latency().count, 0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::default();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_eviction();
        s.record_writeback();
        s.record_retry();
        s.record_fault();
        s.record_corruption();
        let snap = s.snapshot();
        assert_eq!((snap.reads, snap.writes, snap.allocs), (2, 1, 1));
        assert_eq!((snap.hits, snap.evictions, snap.writebacks), (3, 1, 1));
        assert_eq!((snap.retries, snap.faults, snap.corruptions), (1, 1, 1));
        assert!((s.hit_rate() - 0.6).abs() < 1e-12, "3 hits / 5 accesses");
        s.reset();
        assert_eq!(s.snapshot(), IoCounters::default());
        assert_eq!(s.hit_rate(), 0.0);
    }
}

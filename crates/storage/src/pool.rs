//! The LRU buffer pool.
//!
//! Every page access in the workspace goes through [`BufferPool::fetch`] /
//! [`BufferPool::alloc`], which return RAII-pinned guards. A pinned page is
//! never evicted; unpinned pages are evicted least-recently-used, writing
//! dirty victims back to the disk. Because the pool sits between the
//! algorithms and the `Disk`, the shared
//! [`IoStats`] counters reflect exactly the page transfers a real system
//! with the same buffer size would perform — the quantity the I/O
//! experiments (E4, E11) plot.

use crate::disk::Disk;
use crate::page::{Page, PageId};
use crate::stats::IoStats;
use hdsj_core::{Error, Result};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

struct Frame {
    pid: PageId,
    page: RwLock<Page>,
    pins: AtomicU32,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

struct PoolInner {
    map: HashMap<PageId, Arc<Frame>>,
    tick: u64,
    /// Page ids returned by [`BufferPool::free`], reused by the next
    /// allocations before the disk is grown.
    freelist: Vec<PageId>,
}

/// A fixed-capacity page cache with pin/unpin semantics and LRU
/// replacement.
pub struct BufferPool {
    disk: Box<dyn Disk>,
    stats: Arc<IoStats>,
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames (minimum 1) over `disk`.
    pub fn new(disk: Box<dyn Disk>, capacity: usize, stats: Arc<IoStats>) -> BufferPool {
        BufferPool {
            disk,
            stats,
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                tick: 0,
                freelist: Vec::new(),
            }),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages right now.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Total pages allocated on the underlying disk.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Fetches page `id`, reading from disk on a miss. The guard pins the
    /// page until dropped.
    pub fn fetch(&self, id: PageId) -> Result<PinnedPage> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.map.get(&id) {
            frame.last_used.store(tick, Ordering::Relaxed);
            frame.pins.fetch_add(1, Ordering::Relaxed);
            self.stats.record_hit();
            return Ok(PinnedPage {
                frame: Arc::clone(frame),
            });
        }
        self.make_room(&mut inner)?;
        let mut page = Page::zeroed();
        self.disk.read_page(id, &mut page)?;
        Ok(self.install(&mut inner, id, page, false, tick))
    }

    /// Allocates a zeroed page — reusing a freed page when one is
    /// available, growing the disk otherwise — and returns it pinned.
    pub fn alloc(&self) -> Result<PinnedPage> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        self.make_room(&mut inner)?;
        if let Some(id) = inner.freelist.pop() {
            // Reused page: its on-disk bytes are stale, so the zeroed
            // resident copy is dirty.
            return Ok(self.install(&mut inner, id, Page::zeroed(), true, tick));
        }
        let id = self.disk.alloc_page()?;
        // The disk wrote zeros; the resident copy matches, so not dirty.
        Ok(self.install(&mut inner, id, Page::zeroed(), false, tick))
    }

    /// Returns a page to the freelist for reuse. The caller must not hold a
    /// pin on it and must not use the id again; a pinned page is rejected.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.map.get(&id) {
            if frame.pins.load(Ordering::Relaxed) > 0 {
                return Err(Error::Storage(format!("freeing pinned page {id}")));
            }
            inner.map.remove(&id);
        }
        debug_assert!(!inner.freelist.contains(&id), "double free of page {id}");
        inner.freelist.push(id);
        Ok(())
    }

    /// Pages currently on the freelist.
    pub fn free_pages(&self) -> usize {
        self.inner.lock().freelist.len()
    }

    fn install(
        &self,
        inner: &mut PoolInner,
        id: PageId,
        page: Page,
        dirty: bool,
        tick: u64,
    ) -> PinnedPage {
        let frame = Arc::new(Frame {
            pid: id,
            page: RwLock::new(page),
            pins: AtomicU32::new(1),
            dirty: AtomicBool::new(dirty),
            last_used: AtomicU64::new(tick),
        });
        inner.map.insert(id, Arc::clone(&frame));
        PinnedPage { frame }
    }

    /// Ensures a free frame exists, evicting the LRU unpinned page if
    /// necessary. Errors when every frame is pinned.
    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        if inner.map.len() < self.capacity {
            return Ok(());
        }
        let victim = inner
            .map
            .values()
            .filter(|f| f.pins.load(Ordering::Relaxed) == 0)
            .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
            .map(|f| f.pid)
            .ok_or_else(|| {
                Error::Storage(format!(
                    "buffer pool exhausted: all {} frames pinned",
                    self.capacity
                ))
            })?;
        let frame = inner.map.remove(&victim).expect("victim resident");
        self.stats.record_eviction();
        if frame.dirty.load(Ordering::Relaxed) {
            let page = frame.page.read();
            self.disk.write_page(victim, &page)?;
            self.stats.record_writeback();
        }
        Ok(())
    }

    /// Writes every dirty resident page back to the disk (pages stay
    /// resident and become clean).
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        for frame in inner.map.values() {
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let page = frame.page.read();
                self.disk.write_page(frame.pid, &page)?;
            }
        }
        Ok(())
    }
}

/// RAII guard for a pinned page. While alive the page cannot be evicted;
/// dropping it unpins.
pub struct PinnedPage {
    frame: Arc<Frame>,
}

impl std::fmt::Debug for PinnedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PinnedPage(id={})", self.frame.pid)
    }
}

impl PinnedPage {
    /// The page's id.
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// Shared read access to the page body.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Relaxed);
        self.frame.page.write()
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        let stats = Arc::new(IoStats::default());
        BufferPool::new(Box::new(MemDisk::new(Arc::clone(&stats))), frames, stats)
    }

    #[test]
    fn hit_costs_no_io() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let id = a.id();
        drop(a);
        p.stats().reset();
        let _again = p.fetch(id).unwrap();
        let snap = p.stats().snapshot();
        assert_eq!(snap.reads, 0, "resident fetch must be free");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.alloc().unwrap().id();
        let b = p.alloc().unwrap().id();
        // Touch a so b becomes LRU.
        drop(p.fetch(a).unwrap());
        p.stats().reset();
        let _c = p.alloc().unwrap(); // evicts b
        drop(p.fetch(a).unwrap()); // still resident: no read
        assert_eq!(p.stats().snapshot().reads, 0);
        drop(p.fetch(b).unwrap()); // was evicted: one read
        assert_eq!(p.stats().snapshot().reads, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages_only() {
        let p = pool(1);
        let a = p.alloc().unwrap();
        a.write().put_u64(0, 77);
        let a_id = a.id();
        drop(a);
        p.stats().reset();
        let b = p.alloc().unwrap(); // evicts dirty a -> 1 write
        assert_eq!(p.stats().snapshot().writes, 1);
        drop(b); // b clean
        p.stats().reset();
        let back = p.fetch(a_id).unwrap(); // evicts clean b -> 0 writes
        assert_eq!(p.stats().snapshot().writes, 0);
        assert_eq!(back.read().get_u64(0), 77, "dirty data survived eviction");
    }

    #[test]
    fn hit_miss_and_eviction_counters_across_forced_evictions() {
        // Two frames, three pages: every round-robin fetch cycle misses and
        // evicts, so the counters are exactly predictable.
        let p = pool(2);
        let ids: Vec<_> = (0..3).map(|_| p.alloc().unwrap().id()).collect();
        p.stats().reset();

        // Warm fetches of the two resident pages: hits, no I/O. (alloc of
        // page 2 evicted page 0, so residents are pages 1 and 2.)
        drop(p.fetch(ids[1]).unwrap());
        drop(p.fetch(ids[2]).unwrap());
        let snap = p.stats().snapshot();
        assert_eq!((snap.hits, snap.reads, snap.evictions), (2, 0, 0));

        // Three cold fetches in LRU-hostile order: each one misses and
        // evicts a clean page (no write-backs — nothing is dirty).
        for &id in &[ids[0], ids[1], ids[2]] {
            drop(p.fetch(id).unwrap());
        }
        let snap = p.stats().snapshot();
        assert_eq!(snap.hits, 2, "cold fetches add no hits");
        assert_eq!(snap.reads, 3, "every cold fetch reads");
        assert_eq!(snap.evictions, 3, "every cold fetch evicts");
        assert_eq!(snap.writebacks, 0, "clean victims need no write-back");
        assert!((p.stats().hit_rate() - 0.4).abs() < 1e-12, "2 of 5");

        // Dirty a page, force it out: the eviction becomes a write-back.
        p.fetch(ids[0]).unwrap().write().put_u64(0, 9);
        drop(p.fetch(ids[1]).unwrap()); // hit or miss depending on residency
        p.stats().reset();
        drop(p.fetch(ids[2]).unwrap()); // evicts dirty ids[0]
        let snap = p.stats().snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.writebacks, 1, "dirty victim written back");
        assert_eq!(snap.writes, 1);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        // Both pinned; a third page cannot enter.
        let err = p.alloc().unwrap_err();
        assert!(err.to_string().contains("pinned"), "{err}");
        drop(b);
        // Now there is a victim.
        let c = p.alloc().unwrap();
        assert_eq!(a.read().get_u64(0), 0);
        drop((a, c));
    }

    #[test]
    fn flush_all_cleans_pages() {
        let p = pool(4);
        let a = p.alloc().unwrap();
        a.write().put_u64(0, 5);
        drop(a);
        p.stats().reset();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().writes, 1);
        p.flush_all().unwrap();
        assert_eq!(
            p.stats().snapshot().writes,
            1,
            "second flush writes nothing"
        );
    }

    #[test]
    fn resident_and_capacity_report() {
        let p = pool(3);
        assert_eq!(p.capacity(), 3);
        let _a = p.alloc().unwrap();
        let _b = p.alloc().unwrap();
        assert_eq!(p.resident(), 2);
        assert_eq!(p.num_pages(), 2);
    }

    #[test]
    fn eviction_error_propagates_from_injected_fault() {
        let p = pool(1);
        let a = p.alloc().unwrap();
        a.write().put_u64(0, 1);
        drop(a);
        // Next disk op is the dirty write-back during eviction.
        p.stats().set_fault_after(Some(1));
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
    }
}

#[cfg(test)]
mod freelist_tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        let stats = Arc::new(IoStats::default());
        BufferPool::new(Box::new(MemDisk::new(Arc::clone(&stats))), frames, stats)
    }

    #[test]
    fn freed_pages_are_reused_before_growing_the_disk() {
        let p = pool(4);
        let id = p.alloc().unwrap().id();
        assert_eq!(p.num_pages(), 1);
        p.free(id).unwrap();
        assert_eq!(p.free_pages(), 1);
        let again = p.alloc().unwrap();
        assert_eq!(again.id(), id, "freelist id reused");
        assert_eq!(p.num_pages(), 1, "disk did not grow");
        assert_eq!(p.free_pages(), 0);
    }

    #[test]
    fn reused_pages_come_back_zeroed() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        a.write().put_u64(0, 0xfeed);
        let id = a.id();
        drop(a);
        p.flush_all().unwrap();
        p.free(id).unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(b.id(), id);
        assert_eq!(b.read().get_u64(0), 0, "stale bytes must not resurface");
    }

    #[test]
    fn freeing_a_pinned_page_is_rejected() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let err = p.free(a.id()).unwrap_err();
        assert!(err.to_string().contains("pinned"), "{err}");
        let id = a.id();
        drop(a);
        p.free(id).unwrap();
    }

    #[test]
    fn freeing_a_non_resident_page_works() {
        let p = pool(1);
        let a = p.alloc().unwrap().id();
        let _b = p.alloc().unwrap(); // evicts a
        p.free(a).unwrap();
        assert_eq!(p.free_pages(), 1);
    }
}

//! The LRU buffer pool.
//!
//! Every page access in the workspace goes through [`BufferPool::fetch`] /
//! [`BufferPool::alloc`], which return RAII-pinned guards. A pinned page is
//! never evicted; unpinned pages are evicted least-recently-used, writing
//! dirty victims back to the disk. Because the pool sits between the
//! algorithms and the `Disk`, the shared
//! [`IoStats`] counters reflect exactly the page transfers a real system
//! with the same buffer size would perform — the quantity the I/O
//! experiments (E4, E11) plot.
//!
//! The pool is also the recovery layer of the failure model:
//!
//! * pages are **sealed** (checksum written, see [`Page::seal`]) on their
//!   way to disk and **verified** on their way back — a mismatch surfaces
//!   as [`Error::Corruption`] instead of silently wrong records;
//! * transient disk failures are retried with bounded exponential backoff
//!   under the pool's [`RetryPolicy`] (`retries` in the counters);
//! * a failed write-back never loses the dirty page: the victim frame is
//!   re-inserted (eviction) or left dirty (flush), so the only good copy
//!   stays resident and a later attempt can still persist it.

use crate::disk::Disk;
use crate::invariants::{self, rank};
use crate::page::{Page, PageId};
use crate::stats::IoStats;
use hdsj_core::{Error, LifecycleCtx, Result};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded exponential-backoff retry for transient disk faults.
///
/// Retries apply to failures where a repeat may succeed
/// ([`Error::is_transient`]); corruption is never retried — the bad bytes
/// are already on the medium, re-reading them proves nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Cap on the per-attempt sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// No retries: every disk error propagates immediately (the default,
    /// and what the deterministic fault-propagation tests rely on).
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Up to `max_retries` retries, backing off 100 µs, 200 µs, … capped
    /// at 10 ms.
    pub const fn backoff(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
        }
    }

    /// Sleep before retry number `attempt` (1-based).
    fn delay_for(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

struct Frame {
    pid: PageId,
    page: RwLock<Page>,
    pins: AtomicU32,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

struct PoolInner {
    map: HashMap<PageId, Arc<Frame>>,
    tick: u64,
    /// Page ids returned by [`BufferPool::free`], reused by the next
    /// allocations before the disk is grown.
    freelist: Vec<PageId>,
}

/// A fixed-capacity page cache with pin/unpin semantics and LRU
/// replacement.
pub struct BufferPool {
    disk: Box<dyn Disk>,
    stats: Arc<IoStats>,
    capacity: usize,
    retry: RetryPolicy,
    inner: Mutex<PoolInner>,
    /// Per-query lifecycle context, polled/charged on every disk
    /// operation (misses, write-backs, allocs — never on pool hits).
    lifecycle: Mutex<Option<LifecycleCtx>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames (minimum 1) over `disk`, with
    /// no retries.
    pub fn new(disk: Box<dyn Disk>, capacity: usize, stats: Arc<IoStats>) -> BufferPool {
        BufferPool::with_retry(disk, capacity, stats, RetryPolicy::none())
    }

    /// Creates a pool that retries transient disk faults under `retry`.
    pub fn with_retry(
        disk: Box<dyn Disk>,
        capacity: usize,
        stats: Arc<IoStats>,
        retry: RetryPolicy,
    ) -> BufferPool {
        BufferPool {
            disk,
            stats,
            capacity: capacity.max(1),
            retry,
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                tick: 0,
                freelist: Vec::new(),
            }),
            lifecycle: Mutex::new(None),
        }
    }

    /// Installs (or replaces) the lifecycle context. Every disk operation
    /// from now on polls it (cancellation, deadline) and charges one I/O
    /// op against its budget; disk-growing allocations additionally
    /// charge one page against the memory budget.
    pub fn set_lifecycle(&self, ctx: LifecycleCtx) {
        *self.lifecycle.lock() = Some(ctx);
    }

    /// Removes the lifecycle context (e.g. between queries on a shared
    /// engine).
    pub fn clear_lifecycle(&self) {
        *self.lifecycle.lock() = None;
    }

    /// The current lifecycle context, if any (cheap clone of an `Arc`).
    fn lifecycle_ctx(&self) -> Option<LifecycleCtx> {
        self.lifecycle.lock().clone()
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of resident pages right now.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Number of resident pages currently pinned — 0 whenever no guard is
    /// alive, which the chaos suite asserts after every run, failed or
    /// not.
    pub fn pinned_frames(&self) -> usize {
        self.inner
            .lock()
            .map
            .values()
            // ORDERING: reading under the inner lock; pins only rise under
            // this same lock, so a zero read here is a true quiescent frame.
            .filter(|f| f.pins.load(Ordering::Relaxed) > 0)
            .count()
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Total pages allocated on the underlying disk.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Runs a disk operation, retrying transient failures under the
    /// pool's policy. Corruption and non-storage errors propagate
    /// unretried.
    ///
    /// This is the single choke point every disk operation flows through,
    /// so it is also where the lifecycle contract lives: one poll
    /// (cancellation, deadline) and one I/O-budget charge per logical
    /// operation — charged once, not once per retry attempt.
    fn retrying<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        if let Some(lc) = self.lifecycle_ctx() {
            lc.poll()?;
            lc.charge_io(1)?;
        }
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if !e.is_transient() || attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.record_retry();
                    let delay = self.retry.delay_for(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Fetches page `id`, reading from disk on a miss. The guard pins the
    /// page until dropped.
    pub fn fetch(&self, id: PageId) -> Result<PinnedPage> {
        let _rank = invariants::ordered(rank::POOL, "pool.inner");
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.map.get(&id) {
            frame.last_used.store(tick, Ordering::Relaxed);
            // ORDERING: the inner lock is held, and eviction decisions read
            // pins under the same lock — the mutex supplies the ordering,
            // the atomic only the lock-free read in PinnedPage::drop.
            frame.pins.fetch_add(1, Ordering::Relaxed);
            self.stats.record_hit();
            return Ok(PinnedPage {
                frame: Arc::clone(frame),
            });
        }
        self.make_room(&mut inner)?;
        let mut page = Page::zeroed();
        self.retrying(|| self.disk.read_page(id, &mut page))?;
        if let Err((stored, computed)) = page.verify_checksum() {
            self.stats.record_corruption();
            return Err(Error::Corruption(format!(
                "page {id}: stored checksum {stored:#010x}, computed {computed:#010x}"
            )));
        }
        Ok(self.install(&mut inner, id, page, false, tick))
    }

    /// Allocates a zeroed page — reusing a freed page when one is
    /// available, growing the disk otherwise — and returns it pinned.
    pub fn alloc(&self) -> Result<PinnedPage> {
        let _rank = invariants::ordered(rank::POOL, "pool.inner");
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        self.make_room(&mut inner)?;
        if let Some(id) = inner.freelist.pop() {
            // Reused page: its on-disk bytes are stale, so the zeroed
            // resident copy is dirty.
            return Ok(self.install(&mut inner, id, Page::zeroed(), true, tick));
        }
        // Only disk growth counts against the memory-page budget —
        // freelist reuse returns capacity the query already paid for.
        if let Some(lc) = self.lifecycle_ctx() {
            lc.charge_pages(1)?;
        }
        let id = self.retrying(|| self.disk.alloc_page())?;
        // The disk wrote zeros; the resident copy matches, so not dirty.
        Ok(self.install(&mut inner, id, Page::zeroed(), false, tick))
    }

    /// Returns a page to the freelist for reuse. The caller must not hold a
    /// pin on it and must not use the id again; a pinned page is rejected.
    pub fn free(&self, id: PageId) -> Result<()> {
        let _rank = invariants::ordered(rank::POOL, "pool.inner");
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.map.get(&id) {
            // ORDERING: under the inner lock, and pins only rise under that
            // lock — a zero read is stable for the rest of this call.
            if frame.pins.load(Ordering::Relaxed) > 0 {
                return Err(Error::Storage(format!("freeing pinned page {id}")));
            }
            inner.map.remove(&id);
        }
        debug_assert!(!inner.freelist.contains(&id), "double free of page {id}");
        inner.freelist.push(id);
        invariants::invariant(!inner.map.contains_key(&id), || {
            format!("freed page {id} is still resident in the frame map")
        });
        invariants::invariant(
            inner.freelist.iter().all(|f| !inner.map.contains_key(f)),
            || "freelist aliases a resident frame".to_string(),
        );
        Ok(())
    }

    /// Pages currently on the freelist.
    pub fn free_pages(&self) -> usize {
        self.inner.lock().freelist.len()
    }

    /// Replaces the freelist wholesale — the recovery path. After
    /// reopening a file-backed disk, the manifest names the live pages;
    /// everything else on the disk (pages a crashed run allocated but
    /// never sealed into the manifest) is handed back here so nothing
    /// leaks. Rejected while any page is resident: adoption is a
    /// construction-time step, before the first fetch.
    pub fn adopt_freelist(&self, pages: Vec<PageId>) -> Result<()> {
        let _rank = invariants::ordered(rank::POOL, "pool.inner");
        let mut inner = self.inner.lock();
        if !inner.map.is_empty() {
            return Err(Error::Storage(format!(
                "adopt_freelist on a warm pool ({} resident pages)",
                inner.map.len()
            )));
        }
        let num_pages = self.disk.num_pages();
        if let Some(&bad) = pages.iter().find(|&&p| p >= num_pages) {
            return Err(Error::Storage(format!(
                "adopted free page {bad} is beyond the disk ({num_pages} pages)"
            )));
        }
        inner.freelist = pages;
        Ok(())
    }

    /// Forces written pages down to durable storage (`fsync` on the
    /// file-backed disk). Counts as a disk operation for the lifecycle
    /// budget; called by the checkpoint machinery before a manifest
    /// record may reference the pages.
    pub fn sync(&self) -> Result<()> {
        self.retrying(|| self.disk.sync())
    }

    fn install(
        &self,
        inner: &mut PoolInner,
        id: PageId,
        page: Page,
        dirty: bool,
        tick: u64,
    ) -> PinnedPage {
        let frame = Arc::new(Frame {
            pid: id,
            page: RwLock::new(page),
            pins: AtomicU32::new(1),
            dirty: AtomicBool::new(dirty),
            last_used: AtomicU64::new(tick),
        });
        inner.map.insert(id, Arc::clone(&frame));
        PinnedPage { frame }
    }

    /// Ensures a free frame exists, evicting the LRU unpinned page if
    /// necessary. Errors when every frame is pinned. When a dirty
    /// victim's write-back fails even after retries, the frame is
    /// re-inserted — the resident copy is the only good one — and the
    /// error propagates with the pool still consistent.
    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        if inner.map.len() < self.capacity {
            return Ok(());
        }
        let victim = inner
            .map
            .values()
            // ORDERING: under the inner lock; pins only rise under this
            // lock, so an unpinned victim stays unpinned until we release.
            .filter(|f| f.pins.load(Ordering::Relaxed) == 0)
            .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
            .map(|f| f.pid)
            .ok_or_else(|| {
                Error::Storage(format!(
                    "buffer pool exhausted: all {} frames pinned",
                    self.capacity
                ))
            })?;
        let Some(frame) = inner.map.remove(&victim) else {
            // Unreachable by construction — the victim id was taken from
            // the map under the same lock — but a corrupted map is a
            // storage error, not a crash.
            return Err(Error::Storage(format!(
                "eviction victim {victim} vanished from the pool map"
            )));
        };
        // ORDERING: the frame is unpinned and the inner lock is held, so no
        // writer can set dirty concurrently (writers hold a pin); the page
        // RwLock below orders the body bytes themselves.
        if frame.dirty.load(Ordering::Relaxed) {
            let started = std::time::Instant::now();
            let written = {
                let mut page = frame.page.write();
                page.seal();
                invariants::invariant(page.verify_checksum().is_ok(), || {
                    format!("page {victim} fails checksum verification right after seal")
                });
                self.retrying(|| self.disk.write_page(victim, &page))
            };
            if let Err(e) = written {
                inner.map.insert(victim, frame);
                return Err(e);
            }
            // ORDERING: still under the inner lock with zero pins — no
            // concurrent reader of this frame's dirty bit exists.
            frame.dirty.store(false, Ordering::Relaxed);
            self.stats.record_writeback_timed(started.elapsed());
        }
        self.stats.record_eviction();
        Ok(())
    }

    /// Writes every dirty resident page back to the disk (pages stay
    /// resident and become clean). On failure the page keeps its dirty
    /// bit, so nothing is silently dropped and a later flush can retry.
    pub fn flush_all(&self) -> Result<()> {
        let _rank = invariants::ordered(rank::POOL, "pool.inner");
        let inner = self.inner.lock();
        for frame in inner.map.values() {
            // ORDERING: a concurrent write guard may set dirty while we
            // read; missing it is benign — the bit stays set and a later
            // flush retries. The page RwLock orders the bytes we write.
            if frame.dirty.load(Ordering::Relaxed) {
                {
                    let mut page = frame.page.write();
                    page.seal();
                    invariants::invariant(page.verify_checksum().is_ok(), || {
                        format!(
                            "page {} fails checksum verification right after seal",
                            frame.pid
                        )
                    });
                    self.retrying(|| self.disk.write_page(frame.pid, &page))?;
                }
                // ORDERING: clearing after the write-back completed; a
                // racing writer re-sets it via PinnedPage::write, and
                // either order leaves the bit conservatively correct.
                frame.dirty.store(false, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

impl Drop for BufferPool {
    /// Quiescence check (`debug-invariants` only): a pool must not be
    /// torn down while pages are still pinned — a live guard would keep
    /// mutating a frame whose pool-side bookkeeping is gone. Skipped when
    /// already panicking so a failing test reports its own assertion.
    fn drop(&mut self) {
        if invariants::checks() > 0 && !std::thread::panicking() {
            let inner = self.inner.lock();
            let pinned = inner
                .map
                .values()
                // ORDERING: diagnostic read at teardown; &mut self means no
                // new pins can be taken, only in-flight drops can race.
                .filter(|f| f.pins.load(Ordering::Relaxed) > 0)
                .count();
            invariants::invariant(pinned == 0, || {
                format!("buffer pool dropped with {pinned} frame(s) still pinned")
            });
        }
    }
}

/// RAII guard for a pinned page. While alive the page cannot be evicted;
/// dropping it unpins.
pub struct PinnedPage {
    frame: Arc<Frame>,
}

impl std::fmt::Debug for PinnedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PinnedPage(id={})", self.frame.pid)
    }
}

impl PinnedPage {
    /// The page's id.
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// Shared read access to the page body.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        // ORDERING: the pin prevents eviction, so the only concurrent
        // reader is flush_all, for which a stale read is benign (the bit
        // stays set); the page RwLock orders the body bytes.
        self.frame.dirty.store(true, Ordering::Relaxed);
        self.frame.page.write()
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        // ORDERING: decrement-only; every decision made on the count
        // happens under the pool's inner lock, which supplies the
        // happens-before. The RMW's atomicity is all that is needed here.
        self.frame.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::fault::{FaultKind, FaultPlan, FaultyDisk, OpKind};
    use crate::page::PAGE_HEADER;

    fn pool(frames: usize) -> BufferPool {
        let stats = Arc::new(IoStats::default());
        BufferPool::new(Box::new(MemDisk::new(Arc::clone(&stats))), frames, stats)
    }

    fn faulty_pool(frames: usize, retry: RetryPolicy) -> (BufferPool, FaultPlan) {
        let stats = Arc::new(IoStats::default());
        let plan = FaultPlan::new(99);
        let disk = FaultyDisk::new(
            Box::new(MemDisk::new(Arc::clone(&stats))),
            plan.clone(),
            Arc::clone(&stats),
        );
        (
            BufferPool::with_retry(Box::new(disk), frames, stats, retry),
            plan,
        )
    }

    #[test]
    fn hit_costs_no_io() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let id = a.id();
        drop(a);
        p.stats().reset();
        let _again = p.fetch(id).unwrap();
        let snap = p.stats().snapshot();
        assert_eq!(snap.reads, 0, "resident fetch must be free");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.alloc().unwrap().id();
        let b = p.alloc().unwrap().id();
        // Touch a so b becomes LRU.
        drop(p.fetch(a).unwrap());
        p.stats().reset();
        let _c = p.alloc().unwrap(); // evicts b
        drop(p.fetch(a).unwrap()); // still resident: no read
        assert_eq!(p.stats().snapshot().reads, 0);
        drop(p.fetch(b).unwrap()); // was evicted: one read
        assert_eq!(p.stats().snapshot().reads, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages_only() {
        let p = pool(1);
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 77);
        let a_id = a.id();
        drop(a);
        p.stats().reset();
        let b = p.alloc().unwrap(); // evicts dirty a -> 1 write
        assert_eq!(p.stats().snapshot().writes, 1);
        drop(b); // b clean
        p.stats().reset();
        let back = p.fetch(a_id).unwrap(); // evicts clean b -> 0 writes
        assert_eq!(p.stats().snapshot().writes, 0);
        assert_eq!(
            back.read().get_u64(PAGE_HEADER),
            77,
            "dirty data survived eviction"
        );
    }

    #[test]
    fn hit_miss_and_eviction_counters_across_forced_evictions() {
        // Two frames, three pages: every round-robin fetch cycle misses and
        // evicts, so the counters are exactly predictable.
        let p = pool(2);
        let ids: Vec<_> = (0..3).map(|_| p.alloc().unwrap().id()).collect();
        p.stats().reset();

        // Warm fetches of the two resident pages: hits, no I/O. (alloc of
        // page 2 evicted page 0, so residents are pages 1 and 2.)
        drop(p.fetch(ids[1]).unwrap());
        drop(p.fetch(ids[2]).unwrap());
        let snap = p.stats().snapshot();
        assert_eq!((snap.hits, snap.reads, snap.evictions), (2, 0, 0));

        // Three cold fetches in LRU-hostile order: each one misses and
        // evicts a clean page (no write-backs — nothing is dirty).
        for &id in &[ids[0], ids[1], ids[2]] {
            drop(p.fetch(id).unwrap());
        }
        let snap = p.stats().snapshot();
        assert_eq!(snap.hits, 2, "cold fetches add no hits");
        assert_eq!(snap.reads, 3, "every cold fetch reads");
        assert_eq!(snap.evictions, 3, "every cold fetch evicts");
        assert_eq!(snap.writebacks, 0, "clean victims need no write-back");
        assert!((p.stats().hit_rate() - 0.4).abs() < 1e-12, "2 of 5");

        // Dirty a page, force it out: the eviction becomes a write-back.
        p.fetch(ids[0]).unwrap().write().put_u64(PAGE_HEADER, 9);
        drop(p.fetch(ids[1]).unwrap()); // hit or miss depending on residency
        p.stats().reset();
        drop(p.fetch(ids[2]).unwrap()); // evicts dirty ids[0]
        let snap = p.stats().snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.writebacks, 1, "dirty victim written back");
        assert_eq!(snap.writes, 1);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.pinned_frames(), 2);
        // Both pinned; a third page cannot enter.
        let err = p.alloc().unwrap_err();
        assert!(err.to_string().contains("pinned"), "{err}");
        drop(b);
        // Now there is a victim.
        let c = p.alloc().unwrap();
        assert_eq!(a.read().get_u64(PAGE_HEADER), 0);
        drop((a, c));
        assert_eq!(p.pinned_frames(), 0);
    }

    #[test]
    fn flush_all_cleans_pages() {
        let p = pool(4);
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 5);
        drop(a);
        p.stats().reset();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().writes, 1);
        p.flush_all().unwrap();
        assert_eq!(
            p.stats().snapshot().writes,
            1,
            "second flush writes nothing"
        );
    }

    #[test]
    fn resident_and_capacity_report() {
        let p = pool(3);
        assert_eq!(p.capacity(), 3);
        let _a = p.alloc().unwrap();
        let _b = p.alloc().unwrap();
        assert_eq!(p.resident(), 2);
        assert_eq!(p.num_pages(), 2);
    }

    #[test]
    fn eviction_error_propagates_from_injected_fault() {
        let (p, plan) = faulty_pool(1, RetryPolicy::none());
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 1);
        drop(a);
        // Next disk op is the dirty write-back during eviction.
        plan.set_fault_after(Some(1));
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
    }

    #[test]
    fn writeback_fault_leaves_pool_usable_and_loses_nothing() {
        // The satellite case: an injected fault during eviction write-back
        // must leave the pool consistent — the dirty page stays resident
        // (its memory copy is the only good one), pins return to zero, and
        // subsequent operations succeed.
        let (p, plan) = faulty_pool(2, RetryPolicy::none());
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 0xCAFE);
        let a_id = a.id();
        drop(a);
        let _b = p.alloc().unwrap(); // second frame occupied + pinned
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Transient);
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
        // No frame leaked: the victim went back in, so the pool is full
        // but consistent.
        assert_eq!(p.resident(), 2, "victim frame re-inserted after failure");
        let back = p.fetch(a_id).unwrap();
        assert_eq!(
            back.read().get_u64(PAGE_HEADER),
            0xCAFE,
            "dirty page survived the failed write-back"
        );
        drop(back);
        drop(_b);
        assert_eq!(p.pinned_frames(), 0, "all pins released");
        // With the fault gone the eviction now succeeds.
        let c = p.alloc().unwrap();
        drop(c);
        assert_eq!(p.pinned_frames(), 0);
    }

    #[test]
    fn transient_faults_recover_under_retry_policy() {
        let (p, plan) = faulty_pool(1, RetryPolicy::backoff(3));
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 7);
        drop(a);
        // The write-back fails once, then the retry succeeds.
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Transient);
        let _b = p.alloc().unwrap();
        let snap = p.stats().snapshot();
        assert!(snap.retries >= 1, "retry must be counted: {snap:?}");
        assert!(snap.faults >= 1, "fault must be counted: {snap:?}");
    }

    #[test]
    fn persistent_fault_exhausts_retries() {
        let (p, plan) = faulty_pool(1, RetryPolicy::backoff(2));
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 7);
        drop(a);
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Persistent);
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
        assert_eq!(p.stats().snapshot().retries, 2, "both retries spent");
    }

    #[test]
    fn corrupted_page_surfaces_corruption_error() {
        let (p, plan) = faulty_pool(1, RetryPolicy::backoff(3));
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 0xBEEF);
        let a_id = a.id();
        drop(a);
        // The eviction write-back silently damages the page...
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Corrupt);
        drop(p.alloc().unwrap());
        // ...and the re-read detects it, without wasting retries on it.
        let err = p.fetch(a_id).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");
        let snap = p.stats().snapshot();
        assert_eq!(snap.corruptions, 1);
        assert_eq!(snap.retries, 0, "corruption is not retried");
    }

    #[test]
    fn torn_flush_is_reported_and_reflush_heals_the_medium() {
        // A torn write leaves a mixed old/new image on disk, but the pool
        // keeps the page dirty and resident, so the *good* copy shadows the
        // garbage and a later flush repairs it.
        let (p, plan) = faulty_pool(1, RetryPolicy::none());
        let a = p.alloc().unwrap();
        {
            let mut page = a.write();
            for off in (PAGE_HEADER..crate::PAGE_SIZE).step_by(8) {
                page.put_u64(off, 0x5555_5555_5555_5555);
            }
        }
        let a_id = a.id();
        drop(a);
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Torn);
        assert!(p.flush_all().is_err(), "torn write must be reported");
        // Still dirty: the second flush rewrites the full image.
        p.flush_all().unwrap();
        // Evict (clean now, no write) and re-read: the healed image
        // verifies and carries the data.
        drop(p.alloc().unwrap());
        let back = p.fetch(a_id).unwrap();
        assert_eq!(back.read().get_u64(PAGE_HEADER), 0x5555_5555_5555_5555);
    }

    #[test]
    fn retry_policy_delays_are_bounded() {
        let p = RetryPolicy::backoff(40);
        assert_eq!(p.delay_for(1), Duration::from_micros(100));
        assert_eq!(p.delay_for(2), Duration::from_micros(200));
        assert_eq!(p.delay_for(8), Duration::from_millis(10), "capped");
        assert_eq!(p.delay_for(40), Duration::from_millis(10), "no overflow");
        assert_eq!(RetryPolicy::none().delay_for(1), Duration::ZERO);
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use crate::disk::MemDisk;
    use hdsj_core::LifecycleCtx;

    fn pool(frames: usize) -> BufferPool {
        let stats = Arc::new(IoStats::default());
        BufferPool::new(Box::new(MemDisk::new(Arc::clone(&stats))), frames, stats)
    }

    #[test]
    fn canceled_ctx_stops_disk_ops() {
        let p = pool(4);
        let ctx = LifecycleCtx::unbounded();
        p.set_lifecycle(ctx.clone());
        let a = p.alloc().unwrap();
        let a_id = a.id();
        drop(a);
        ctx.cancel_token().cancel();
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
        // Pool *hits* stay free — no disk op, no poll — so an already
        // resident page can still be read while the error unwinds.
        assert!(p.fetch(a_id).is_ok());
        p.clear_lifecycle();
        assert!(p.alloc().is_ok(), "context removed, ops resume");
    }

    #[test]
    fn io_budget_bounds_disk_operations() {
        let p = pool(4);
        p.set_lifecycle(LifecycleCtx::builder().io_budget(2).build());
        drop(p.alloc().unwrap()); // io op 1 (disk grow)
        drop(p.alloc().unwrap()); // io op 2
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::BudgetExhausted(_)), "{err}");
    }

    #[test]
    fn page_budget_counts_growth_not_reuse() {
        let p = pool(4);
        p.set_lifecycle(LifecycleCtx::builder().page_budget(1).build());
        let a = p.alloc().unwrap();
        let id = a.id();
        drop(a);
        let err = p.alloc().unwrap_err();
        assert!(matches!(err, Error::BudgetExhausted(_)), "{err}");
        // Freed pages are capacity already paid for: reuse succeeds.
        p.free(id).unwrap();
        assert_eq!(p.alloc().unwrap().id(), id);
    }

    #[test]
    fn adopt_freelist_recycles_orphaned_pages() {
        let stats = Arc::new(IoStats::default());
        let disk = MemDisk::new(Arc::clone(&stats));
        for _ in 0..4 {
            disk.alloc_page().unwrap();
        }
        let p = BufferPool::new(Box::new(disk), 4, stats);
        // Pages 1 and 3 are "live" per some manifest; 0 and 2 leaked.
        p.adopt_freelist(vec![0, 2]).unwrap();
        assert_eq!(p.free_pages(), 2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!((a.id(), b.id()), (2, 0), "leaked pages reused first");
        assert_eq!(p.num_pages(), 4, "no growth while the freelist lasts");
    }

    #[test]
    fn adopt_freelist_rejects_warm_or_bogus_state() {
        let p = pool(4);
        let err = p.adopt_freelist(vec![7]).unwrap_err();
        assert!(err.to_string().contains("beyond the disk"), "{err}");
        let _a = p.alloc().unwrap();
        let err = p.adopt_freelist(vec![]).unwrap_err();
        assert!(err.to_string().contains("warm pool"), "{err}");
    }

    #[test]
    fn sync_reaches_the_disk() {
        let p = pool(2);
        drop(p.alloc().unwrap());
        p.flush_all().unwrap();
        p.sync().unwrap();
    }
}

#[cfg(test)]
mod freelist_tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::page::PAGE_HEADER;

    fn pool(frames: usize) -> BufferPool {
        let stats = Arc::new(IoStats::default());
        BufferPool::new(Box::new(MemDisk::new(Arc::clone(&stats))), frames, stats)
    }

    #[test]
    fn freed_pages_are_reused_before_growing_the_disk() {
        let p = pool(4);
        let id = p.alloc().unwrap().id();
        assert_eq!(p.num_pages(), 1);
        p.free(id).unwrap();
        assert_eq!(p.free_pages(), 1);
        let again = p.alloc().unwrap();
        assert_eq!(again.id(), id, "freelist id reused");
        assert_eq!(p.num_pages(), 1, "disk did not grow");
        assert_eq!(p.free_pages(), 0);
    }

    #[test]
    fn reused_pages_come_back_zeroed() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        a.write().put_u64(PAGE_HEADER, 0xfeed);
        let id = a.id();
        drop(a);
        p.flush_all().unwrap();
        p.free(id).unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(b.id(), id);
        assert_eq!(
            b.read().get_u64(PAGE_HEADER),
            0,
            "stale bytes must not resurface"
        );
    }

    #[test]
    fn freeing_a_pinned_page_is_rejected() {
        let p = pool(2);
        let a = p.alloc().unwrap();
        let err = p.free(a.id()).unwrap_err();
        assert!(err.to_string().contains("pinned"), "{err}");
        let id = a.id();
        drop(a);
        p.free(id).unwrap();
    }

    #[test]
    fn freeing_a_non_resident_page_works() {
        let p = pool(1);
        let a = p.alloc().unwrap().id();
        let _b = p.alloc().unwrap(); // evicts a
        p.free(a).unwrap();
        assert_eq!(p.free_pages(), 1);
    }
}

//! External multi-way merge sort over [`RecordFile`]s.
//!
//! Records are ordered by `memcmp` of their first `key_len` bytes (ties
//! broken by the remaining bytes, making the sort deterministic). Keys in
//! this workspace are big-endian `BitKey` bytes plus a
//! level byte, so byte order *is* key order.
//!
//! The sort follows the textbook two-stage shape: (1) run formation — fill a
//! bounded in-memory workspace, `sort_unstable`, spill a sorted run; (2)
//! multi-way merge with a loser-tree-equivalent binary heap, cascading in
//! passes when the number of runs exceeds the merge fan-in. All I/O flows
//! through the buffer pool and is therefore counted.
//!
//! With [`SortConfig::threads`] > 1, run formation fans out on the
//! `hdsj-exec` pool: the filled workspace is split into contiguous slices,
//! each worker sorts its own slice, and every sorted slice spills as its
//! own run. All I/O (input cursor reads, run writes) stays on the calling
//! thread, so fault-injection schedules are identical at every thread
//! count. The output is **byte-identical** to the serial sort: records are
//! totally ordered (key prefix, then full-record tiebreak), so the merged
//! result is the unique sorted sequence of the input multiset regardless of
//! how records were partitioned into runs.

use crate::file::{RecordCursor, RecordFile};
use crate::manifest::{Checkpointer, ManifestState};
use crate::StorageEngine;
use hdsj_core::{Error, Result};
use hdsj_exec::Pool;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maximum number of runs merged in one pass.
const MAX_FANIN: usize = 64;

/// Configuration for [`external_sort`].
#[derive(Clone, Copy, Debug)]
pub struct SortConfig {
    /// Records held in memory during run formation (the "sort buffer").
    pub mem_records: usize,
    /// Merge fan-in (clamped to `2..=64`).
    pub fanin: usize,
    /// Worker threads for run formation (`0` = all hardware threads, per
    /// `hdsj-exec`'s resolution rule). `1` sorts runs on the calling
    /// thread. The merge stage is always sequential, and output is
    /// byte-identical at every thread count.
    pub threads: usize,
}

impl Default for SortConfig {
    fn default() -> SortConfig {
        SortConfig {
            mem_records: 64 * 1024,
            fanin: MAX_FANIN,
            threads: 1,
        }
    }
}

/// Sorts `input` by the first `key_len` bytes of each record (full-record
/// tiebreak), producing a new file on the same engine. The input file is
/// left untouched.
pub fn external_sort(
    engine: &StorageEngine,
    input: &RecordFile,
    key_len: usize,
    config: SortConfig,
) -> Result<RecordFile> {
    let rec_len = input.record_len();
    if key_len > rec_len {
        return Err(Error::InvalidInput(format!(
            "key length {key_len} exceeds record length {rec_len}"
        )));
    }
    let mem_records = config.mem_records.max(2);
    let fanin = config.fanin.clamp(2, MAX_FANIN);
    let pool = Pool::new(config.threads);

    // Stage 1: run formation. With several workers, each filled workspace
    // splits into contiguous slices sorted concurrently; every sorted slice
    // spills as its own run (written here, sequentially, in slice order).
    let mut runs: Vec<RecordFile> = Vec::new();
    {
        let mut buf: Vec<u8> = Vec::with_capacity(mem_records * rec_len);
        let mut cursor = input.cursor();
        loop {
            buf.clear();
            while buf.len() < mem_records * rec_len {
                match cursor.next()? {
                    Some(rec) => buf.extend_from_slice(rec),
                    None => break,
                }
            }
            if buf.is_empty() {
                break;
            }
            let n = buf.len() / rec_len;
            let slice = n.div_ceil(pool.threads()).max(1);
            let buf = &buf;
            let sorted_slices = pool.map_chunks(None, n, slice, |range| {
                let mut order: Vec<u32> = (range.start as u32..range.end as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    let ra = &buf[a as usize * rec_len..(a as usize + 1) * rec_len];
                    let rb = &buf[b as usize * rec_len..(b as usize + 1) * rec_len];
                    cmp_records(ra, rb, key_len)
                });
                Ok(order)
            })?;
            for order in sorted_slices {
                let mut run = RecordFile::create(engine, rec_len)?;
                for &i in &order {
                    run.push(&buf[i as usize * rec_len..(i as usize + 1) * rec_len])?;
                }
                run.release_tail();
                runs.push(run);
            }
        }
    }

    if runs.is_empty() {
        return RecordFile::create(engine, rec_len);
    }

    // Stage 2: cascaded multi-way merges. Consumed runs are destroyed so
    // their pages return to the freelist instead of growing the disk.
    while runs.len() > 1 {
        let mut next: Vec<RecordFile> = Vec::new();
        let mut iter = runs.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<RecordFile> = iter.by_ref().take(fanin).collect();
            let refs: Vec<&RecordFile> = group.iter().collect();
            next.push(merge_runs(engine, &refs, key_len)?);
            for run in group {
                run.destroy()?;
            }
        }
        runs = next;
    }
    // The merge loop only exits with exactly one run; an empty vector here
    // means the cascade logic is broken, which is a storage bug, not a
    // reason to abort the process.
    runs.pop()
        .ok_or_else(|| Error::Storage("external sort produced no output run".into()))
}

/// Checkpointed variant of [`external_sort`]: every spilled run and every
/// merge output is sealed into `ckpt`'s manifest, so a crashed sort resumes
/// from its last durable file instead of starting over.
///
/// Naming: runs seal as `{prefix}.run.{i}`, merge outputs as
/// `{prefix}.merge.{j}` (each atomically replacing the files it consumed),
/// and the final result as `{prefix}.out`. Crash points visited:
/// `sort.run_sealed` after each run, `sort.merge_sealed` after each merge,
/// and `out_point` (caller-named, e.g. `msj.sort_sealed`) after the final
/// seal.
///
/// Resume invariants this leans on:
///
/// * runs are contiguous input slices sealed in input order, so the number
///   of input records already consumed is simply the *sum of live file
///   lengths* under `prefix` — no separate position marker can tear away
///   from the files it describes;
/// * the sorted output is the unique ordered sequence of the input
///   multiset (full-record tiebreak), so resuming with different run
///   boundaries than the fresh execution still yields byte-identical
///   output.
#[allow(clippy::too_many_arguments)] // the recovery quadruple (ckpt, prefix, out_point, state) travels together
pub fn external_sort_resumable(
    engine: &StorageEngine,
    input: &RecordFile,
    key_len: usize,
    config: SortConfig,
    ckpt: &mut Checkpointer,
    prefix: &str,
    out_point: &str,
    state: &ManifestState,
) -> Result<RecordFile> {
    let rec_len = input.record_len();
    if key_len > rec_len {
        return Err(Error::InvalidInput(format!(
            "key length {key_len} exceeds record length {rec_len}"
        )));
    }
    let out_tag = format!("{prefix}.out");
    if let Some(spec) = state.files.get(&out_tag) {
        // The whole sort already completed before the crash.
        return spec.open(engine);
    }
    let mem_records = config.mem_records.max(2);
    let fanin = config.fanin.clamp(2, MAX_FANIN);
    let pool = Pool::new(config.threads);

    // Recover sealed work. Tags carry numeric suffixes; recover them in
    // (kind, index) order so resumed merges stay deterministic.
    let run_pfx = format!("{prefix}.run.");
    let merge_pfx = format!("{prefix}.merge.");
    let mut recovered: Vec<(bool, u64, String)> = Vec::new();
    let (mut run_seq, mut merge_seq, mut input_pos) = (0u64, 0u64, 0u64);
    for (tag, spec) in state.files_with_prefix(&format!("{prefix}.")) {
        if let Some(i) = tag.strip_prefix(&run_pfx).and_then(|s| s.parse().ok()) {
            recovered.push((false, i, tag.clone()));
            run_seq = run_seq.max(i + 1);
        } else if let Some(j) = tag.strip_prefix(&merge_pfx).and_then(|s| s.parse().ok()) {
            recovered.push((true, j, tag.clone()));
            merge_seq = merge_seq.max(j + 1);
        } else {
            return Err(Error::Corruption(format!(
                "manifest file `{tag}` does not belong to sort `{prefix}`"
            )));
        }
        // Live files partition the consumed input prefix exactly.
        input_pos += spec.len;
    }
    recovered.sort();
    let mut runs: Vec<(String, RecordFile)> = Vec::with_capacity(recovered.len());
    for (_, _, tag) in recovered {
        let file = state.files[&tag].open(engine)?;
        runs.push((tag, file));
    }

    // Stage 1: run formation, resumed at the first unconsumed record.
    if input_pos < input.len() {
        let mut buf: Vec<u8> = Vec::with_capacity(mem_records * rec_len);
        let mut cursor = input.cursor_at(input_pos);
        loop {
            buf.clear();
            while buf.len() < mem_records * rec_len {
                match cursor.next()? {
                    Some(rec) => buf.extend_from_slice(rec),
                    None => break,
                }
            }
            if buf.is_empty() {
                break;
            }
            let n = buf.len() / rec_len;
            let slice = n.div_ceil(pool.threads()).max(1);
            let buf = &buf;
            let sorted_slices = pool.map_chunks(None, n, slice, |range| {
                let mut order: Vec<u32> = (range.start as u32..range.end as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    let ra = &buf[a as usize * rec_len..(a as usize + 1) * rec_len];
                    let rb = &buf[b as usize * rec_len..(b as usize + 1) * rec_len];
                    cmp_records(ra, rb, key_len)
                });
                Ok(order)
            })?;
            for order in sorted_slices {
                let mut run = RecordFile::create(engine, rec_len)?;
                for &i in &order {
                    run.push(&buf[i as usize * rec_len..(i as usize + 1) * rec_len])?;
                }
                run.release_tail();
                let tag = format!("{run_pfx}{run_seq}");
                run_seq += 1;
                ckpt.seal_file("sort.run_sealed", &tag, &run, &[])?;
                runs.push((tag, run));
            }
        }
    }

    if runs.is_empty() {
        let out = RecordFile::create(engine, rec_len)?;
        ckpt.seal_file(out_point, &out_tag, &out, &[])?;
        return Ok(out);
    }

    // Stage 2: cascaded merges. Each output atomically replaces the files
    // it consumed, then the consumed pages return to the freelist.
    while runs.len() > 1 {
        let mut next: Vec<(String, RecordFile)> = Vec::new();
        let mut iter = runs.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<(String, RecordFile)> = iter.by_ref().take(fanin).collect();
            let files: Vec<&RecordFile> = group.iter().map(|(_, f)| f).collect();
            let merged = merge_runs(engine, &files, key_len)?;
            let consumed: Vec<String> = group.iter().map(|(t, _)| t.clone()).collect();
            let tag = format!("{merge_pfx}{merge_seq}");
            merge_seq += 1;
            ckpt.seal_file("sort.merge_sealed", &tag, &merged, &consumed)?;
            for (_, run) in group {
                run.destroy()?;
            }
            next.push((tag, merged));
        }
        runs = next;
    }
    let Some((tag, out)) = runs.pop() else {
        return Err(Error::Storage(
            "external sort produced no output run".into(),
        ));
    };
    ckpt.seal_file(out_point, &out_tag, &out, &[tag])?;
    Ok(out)
}

fn cmp_records(a: &[u8], b: &[u8], key_len: usize) -> Ordering {
    a[..key_len]
        .cmp(&b[..key_len])
        .then_with(|| a[key_len..].cmp(&b[key_len..]))
}

/// One heap entry: the current record of run `run`, ordered ascending.
struct HeapItem {
    rec: Vec<u8>,
    key_len: usize,
    run: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse record order (BinaryHeap is a max-heap) and break ties by
        // run index for a deterministic, stable-per-run merge.
        cmp_records(&other.rec, &self.rec, self.key_len).then_with(|| other.run.cmp(&self.run))
    }
}

fn merge_runs(
    engine: &StorageEngine,
    runs: &[&RecordFile],
    key_len: usize,
) -> Result<RecordFile> {
    let rec_len = runs[0].record_len();
    let mut out = RecordFile::create(engine, rec_len)?;
    let mut cursors: Vec<RecordCursor<'_>> = runs.iter().map(|r| r.cursor()).collect();
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(runs.len());
    for (i, cur) in cursors.iter_mut().enumerate() {
        if let Some(rec) = cur.next()? {
            heap.push(HeapItem {
                rec: rec.to_vec(),
                key_len,
                run: i,
            });
        }
    }
    while let Some(item) = heap.pop() {
        out.push(&item.rec)?;
        if let Some(rec) = cursors[item.run].next()? {
            heap.push(HeapItem {
                rec: rec.to_vec(),
                key_len,
                run: item.run,
            });
        }
    }
    out.release_tail();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_file(engine: &StorageEngine, records: &[Vec<u8>]) -> RecordFile {
        let mut f = RecordFile::create(engine, records[0].len()).unwrap();
        for r in records {
            f.push(r).unwrap();
        }
        f.release_tail();
        f
    }

    fn sorted_records(engine: &StorageEngine, f: &RecordFile) -> Vec<Vec<u8>> {
        let _ = engine;
        f.read_all().unwrap()
    }

    #[test]
    fn sorts_small_file_like_std_sort() {
        let eng = StorageEngine::in_memory(16);
        let records: Vec<Vec<u8>> = (0..500u32)
            .map(|i| {
                let key = (i.wrapping_mul(2654435761)) % 1000;
                let mut rec = key.to_be_bytes().to_vec();
                rec.extend_from_slice(&i.to_le_bytes());
                rec
            })
            .collect();
        let input = make_file(&eng, &records);
        let out = external_sort(
            &eng,
            &input,
            4,
            SortConfig {
                mem_records: 37,
                fanin: 3,
                ..SortConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), input.len());
        let mut expected = records.clone();
        expected.sort();
        assert_eq!(sorted_records(&eng, &out), expected);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let eng = StorageEngine::in_memory(8);
        let input = RecordFile::create(&eng, 8).unwrap();
        let out = external_sort(&eng, &input, 8, SortConfig::default()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_run_skips_merging() {
        let eng = StorageEngine::in_memory(8);
        let records: Vec<Vec<u8>> =
            (0..10u64).rev().map(|i| i.to_be_bytes().to_vec()).collect();
        let input = make_file(&eng, &records);
        let out = external_sort(&eng, &input, 8, SortConfig::default()).unwrap();
        let got = sorted_records(&eng, &out);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn key_prefix_ordering_with_payload_tiebreak() {
        let eng = StorageEngine::in_memory(8);
        // Same 2-byte key, different payloads.
        let records = vec![vec![0, 1, 9, 9], vec![0, 1, 0, 0], vec![0, 0, 5, 5]];
        let input = make_file(&eng, &records);
        let out = external_sort(
            &eng,
            &input,
            2,
            SortConfig {
                mem_records: 2,
                fanin: 2,
                ..SortConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            sorted_records(&eng, &out),
            vec![vec![0, 0, 5, 5], vec![0, 1, 0, 0], vec![0, 1, 9, 9]]
        );
    }

    #[test]
    fn multi_pass_merge_with_tiny_fanin() {
        let eng = StorageEngine::in_memory(32);
        let records: Vec<Vec<u8>> = (0..200u16)
            .map(|i| (199 - i).to_be_bytes().to_vec())
            .collect();
        let input = make_file(&eng, &records);
        // mem_records=10 -> 20 runs; fanin=2 -> 5 merge passes.
        let out = external_sort(
            &eng,
            &input,
            2,
            SortConfig {
                mem_records: 10,
                fanin: 2,
                ..SortConfig::default()
            },
        )
        .unwrap();
        let got = sorted_records(&eng, &out);
        assert_eq!(got.len(), 200);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rejects_key_longer_than_record() {
        let eng = StorageEngine::in_memory(8);
        let input = RecordFile::create(&eng, 4).unwrap();
        assert!(external_sort(&eng, &input, 5, SortConfig::default()).is_err());
    }

    #[test]
    fn fault_during_sort_propagates() {
        let eng = StorageEngine::in_memory(8);
        let records: Vec<Vec<u8>> = (0..50u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let input = make_file(&eng, &records);
        eng.flush_all().unwrap();
        eng.set_fault_after(Some(3));
        let res = external_sort(
            &eng,
            &input,
            8,
            SortConfig {
                mem_records: 8,
                fanin: 2,
                ..SortConfig::default()
            },
        );
        eng.set_fault_after(None);
        assert!(res.is_err());
        // The abandoned partial runs must have returned their pages: every
        // disk page is either owned by the (intact) input or free again.
        assert_eq!(
            eng.pool().free_pages() + input.num_pages(),
            eng.pool().num_pages() as usize,
            "failed sort leaked temp-run pages"
        );
        assert_eq!(eng.pool().pinned_frames(), 0, "failed sort leaked pins");
    }
}

#[cfg(test)]
mod resumable_tests {
    use super::*;
    use crate::manifest::{Manifest, ManifestState};
    use hdsj_core::Error;
    use std::path::Path;

    fn test_records(seed: u32, n: u32) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let key = i.wrapping_mul(2654435761).wrapping_add(seed) % 509;
                let mut rec = key.to_be_bytes().to_vec();
                rec.extend_from_slice(&i.to_le_bytes());
                rec
            })
            .collect()
    }

    /// One attempt at a checkpointed sort rooted in `dir`: creates the
    /// manifest + data file on the first call, resumes from them on later
    /// calls. `halt` injects an in-process "crash" after the named
    /// checkpoint becomes durable.
    fn attempt(
        dir: &Path,
        records: &[Vec<u8>],
        halt: Option<(&str, u64)>,
    ) -> Result<Vec<Vec<u8>>> {
        let man_path = dir.join("sort.manifest");
        let data_path = dir.join("sort.manifest.pages");
        let cfg = SortConfig {
            mem_records: 16,
            fanin: 2,
            ..SortConfig::default()
        };
        let (eng, mut ckpt, state, input);
        if man_path.exists() {
            let (man, recs) = Manifest::open_append(&man_path)?;
            state = ManifestState::replay(&recs)?;
            eng = StorageEngine::builder(16).file_backed_open(&data_path)?;
            eng.adopt_freelist(state.orphan_pages(eng.pool().num_pages()))?;
            ckpt = Checkpointer::new(&eng, man);
            input = state.files["input"].open(&eng)?;
        } else {
            eng = StorageEngine::file_backed(&data_path, 16)?;
            state = ManifestState::default();
            ckpt = Checkpointer::new(&eng, Manifest::create(&man_path, 1)?);
            let mut f = RecordFile::create(&eng, records[0].len())?;
            for r in records {
                f.push(r)?;
            }
            f.release_tail();
            ckpt.seal_file("input_sealed", "input", &f, &[])?;
            input = f;
        }
        if let Some((point, n)) = halt {
            ckpt.halt_at(point, n);
        }
        let out = external_sort_resumable(
            &eng,
            &input,
            4,
            cfg,
            &mut ckpt,
            "sort.t",
            "sort.out_sealed",
            &state,
        )?;
        let got = out.read_all()?;
        // Page accounting: everything except the input and the output is
        // either destroyed or was adopted as an orphan — nothing leaks.
        assert_eq!(eng.pool().pinned_frames(), 0, "leaked pins");
        assert_eq!(
            eng.pool().free_pages() + input.num_pages() + out.num_pages(),
            eng.pool().num_pages() as usize,
            "leaked pages"
        );
        Ok(got)
    }

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsj-rsort-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resumable_sort_without_crash_matches_plain_sort() {
        let records = test_records(11, 300);
        let mut expected = records.clone();
        expected.sort();
        let dir = fresh_dir("fresh");
        let got = attempt(&dir, &records, None).unwrap();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_sort_resumes_to_identical_output() {
        // Crash after run seals, merge seals, and the final out seal, at
        // several depths and seeds; the resumed output must be
        // byte-identical to a never-crashed sort.
        for seed in [1u32, 2, 3] {
            let records = test_records(seed, 200 + seed * 37);
            let mut expected = records.clone();
            expected.sort();
            for (point, nth) in [
                ("sort.run_sealed", 1),
                ("sort.run_sealed", 5),
                ("sort.merge_sealed", 1),
                ("sort.merge_sealed", 3),
                ("sort.out_sealed", 1),
            ] {
                let dir = fresh_dir(&format!("{seed}-{point}-{nth}"));
                let err = attempt(&dir, &records, Some((point, nth))).unwrap_err();
                assert!(matches!(err, Error::Canceled(_)), "{point}@{nth}: {err:?}");
                let got = attempt(&dir, &records, None)
                    .unwrap_or_else(|e| panic!("resume {point}@{nth} seed {seed}: {e:?}"));
                assert_eq!(got, expected, "{point}@{nth} seed {seed}");
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    #[test]
    fn double_crash_then_resume_still_converges() {
        let records = test_records(9, 400);
        let mut expected = records.clone();
        expected.sort();
        let dir = fresh_dir("double");
        assert!(attempt(&dir, &records, Some(("sort.run_sealed", 2))).is_err());
        assert!(attempt(&dir, &records, Some(("sort.merge_sealed", 2))).is_err());
        let got = attempt(&dir, &records, None).unwrap();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn external_sort_equals_std_sort(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 12),
                0..400,
            ),
            key_len in 1usize..=12,
            mem_records in 2usize..64,
            fanin in 2usize..8,
        ) {
            let eng = StorageEngine::in_memory(64);
            let mut file = RecordFile::create(&eng, 12).unwrap();
            for r in &records {
                file.push(r).unwrap();
            }
            file.release_tail();
            let out = external_sort(&eng, &file, key_len, SortConfig { mem_records, fanin, ..SortConfig::default() })
                .unwrap();
            let got = out.read_all().unwrap();
            let mut want = records.clone();
            want.sort_by(|a, b| {
                a[..key_len].cmp(&b[..key_len]).then_with(|| a[key_len..].cmp(&b[key_len..]))
            });
            prop_assert_eq!(got, want);
        }

        #[test]
        fn parallel_sort_is_byte_identical_to_serial(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 10),
                0..300,
            ),
            key_len in 1usize..=10,
            mem_records in 2usize..48,
        ) {
            let sort_with = |threads: usize| {
                let eng = StorageEngine::in_memory(64);
                let mut file = RecordFile::create(&eng, 10).unwrap();
                for r in &records {
                    file.push(r).unwrap();
                }
                file.release_tail();
                let out = external_sort(
                    &eng,
                    &file,
                    key_len,
                    SortConfig { mem_records, fanin: 4, threads },
                )
                .unwrap();
                out.read_all().unwrap()
            };
            let serial = sort_with(1);
            for threads in [2usize, 4, 8] {
                prop_assert_eq!(&sort_with(threads), &serial, "threads={}", threads);
            }
        }
    }
}

//! Append-only files of fixed-size records on top of the buffer pool.
//!
//! MSJ's level files and the external sort's runs are `RecordFile`s. Each
//! page holds a small header (record count) followed by densely packed
//! records; the page directory (the list of page ids) lives in memory, which
//! is the usual arrangement for temporary files whose extent map is tiny
//! compared to the data.

use crate::page::{PAGE_HEADER, PAGE_SIZE};
use crate::pool::PinnedPage;
use crate::{PageId, StorageEngine};
use hdsj_core::{Error, Result};

/// Offset of the u32 record count — just past the storage-layer checksum
/// header, which owns bytes `0..PAGE_HEADER`.
const COUNT_OFFSET: usize = PAGE_HEADER;

/// Bytes reserved at the start of each page before record data: the
/// storage header plus the record count (padded to 8 bytes).
const HEADER: usize = PAGE_HEADER + 8;

/// An append-only sequence of fixed-length records stored in pages.
pub struct RecordFile {
    engine: StorageEngine,
    record_len: usize,
    per_page: usize,
    pages: Vec<PageId>,
    len: u64,
    /// Tail page kept pinned between appends so a bulk load does not
    /// re-fetch it per record.
    tail: Option<PinnedPage>,
}

impl RecordFile {
    /// Creates an empty file of `record_len`-byte records on `engine`.
    pub fn create(engine: &StorageEngine, record_len: usize) -> Result<RecordFile> {
        if record_len == 0 || record_len > PAGE_SIZE - HEADER {
            return Err(Error::InvalidInput(format!(
                "record length {record_len} not in 1..={}",
                PAGE_SIZE - HEADER
            )));
        }
        Ok(RecordFile {
            engine: engine.clone(),
            record_len,
            per_page: (PAGE_SIZE - HEADER) / record_len,
            pages: Vec::new(),
            len: 0,
            tail: None,
        })
    }

    /// Reconstructs a file from a manifest record: the page directory and
    /// record count of a file that an earlier (crashed or checkpointed)
    /// run already wrote and flushed. The reconstructed file owns its
    /// pages exactly like a freshly written one — `destroy` (or drop)
    /// returns them to the freelist.
    pub fn from_parts(
        engine: &StorageEngine,
        record_len: usize,
        pages: Vec<PageId>,
        len: u64,
    ) -> Result<RecordFile> {
        let mut file = RecordFile::create(engine, record_len)?;
        let expected = len.div_ceil(file.per_page as u64) as usize;
        if pages.len() != expected {
            return Err(Error::Corruption(format!(
                "manifest file spec: {len} records of {record_len} bytes need \
                 {expected} pages, got {}",
                pages.len()
            )));
        }
        file.pages = pages;
        file.len = len;
        Ok(file)
    }

    /// Record length in bytes.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the file occupies.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Records per page (a function of the record length).
    pub fn records_per_page(&self) -> usize {
        self.per_page
    }

    /// Appends one record. `rec.len()` must equal the record length.
    pub fn push(&mut self, rec: &[u8]) -> Result<()> {
        if rec.len() != self.record_len {
            return Err(Error::InvalidInput(format!(
                "record of {} bytes in a file of {}-byte records",
                rec.len(),
                self.record_len
            )));
        }
        let slot = (self.len % self.per_page as u64) as usize;
        if slot == 0 {
            // Start a new page; release the old tail pin first.
            self.tail = None;
            let page = self.engine.alloc()?;
            self.pages.push(page.id());
            self.tail = Some(page);
        } else if self.tail.is_none() {
            // Re-open the tail after the file was iterated or unpinned.
            let Some(&pid) = self.pages.last() else {
                return Err(Error::Storage(
                    "record file has records but no pages".into(),
                ));
            };
            self.tail = Some(self.engine.fetch(pid)?);
        }
        let Some(tail) = self.tail.as_ref() else {
            // Both branches above leave a pin in place; a missing one means
            // the file's invariants are already broken.
            return Err(Error::Storage("record file tail page not pinned".into()));
        };
        {
            let mut page = tail.write();
            page.put_slice(HEADER + slot * self.record_len, rec);
            page.put_u32(COUNT_OFFSET, slot as u32 + 1);
        }
        self.len += 1;
        Ok(())
    }

    /// Unpins the tail page (e.g. before long scans, so the pool frame is
    /// reusable). Appending re-pins automatically.
    pub fn release_tail(&mut self) {
        self.tail = None;
    }

    /// Frees every page of the file back to the engine's freelist. Use for
    /// temporary files (sort runs, level files) once consumed, so long
    /// pipelines do not grow the disk without bound.
    pub fn destroy(mut self) -> Result<()> {
        self.tail = None;
        for pid in std::mem::take(&mut self.pages) {
            self.engine.pool().free(pid)?;
        }
        self.len = 0;
        Ok(())
    }

    /// Pages owned by the file right now (testing / leak checks).
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// A cursor positioned before the first record.
    pub fn cursor(&self) -> RecordCursor<'_> {
        self.cursor_at(0)
    }

    /// A cursor positioned before record `start` (random access: the page
    /// directory maps record index to page directly, so no pages before the
    /// target are touched).
    pub fn cursor_at(&self, start: u64) -> RecordCursor<'_> {
        let page_idx = (start / self.per_page as u64) as usize;
        let slot = (start % self.per_page as u64) as usize;
        RecordCursor {
            file: self,
            page_idx,
            slot,
            current: None,
            buf: vec![0u8; self.record_len],
        }
    }

    /// Reads every record into a fresh `Vec` (testing / small files).
    pub fn read_all(&self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cur = self.cursor();
        while let Some(rec) = cur.next()? {
            out.push(rec.to_vec());
        }
        Ok(out)
    }
}

impl Drop for RecordFile {
    fn drop(&mut self) {
        // Temp-file safety net: a file abandoned on an error path (`?`
        // between create and destroy) still returns its pages to the
        // freelist. After an explicit [`RecordFile::destroy`] the page list
        // is empty and this is a no-op; failures here are ignored — drop
        // cannot report them and the pages are unreachable anyway.
        self.tail = None;
        for pid in std::mem::take(&mut self.pages) {
            let _ = self.engine.pool().free(pid);
        }
    }
}

/// Sequential reader over a [`RecordFile`]. Holds at most one page pinned.
pub struct RecordCursor<'a> {
    file: &'a RecordFile,
    page_idx: usize,
    slot: usize,
    current: Option<PinnedPage>,
    buf: Vec<u8>,
}

impl<'a> RecordCursor<'a> {
    /// Advances to the next record, returning a borrow of it (valid until
    /// the next call), or `None` at end of file.
    ///
    /// Deliberately not `Iterator`: the cursor is *lending* (the slice
    /// borrows its internal buffer) and fallible.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<&[u8]>> {
        loop {
            if self.page_idx >= self.file.pages.len() {
                return Ok(None);
            }
            if self.current.is_none() {
                self.current = Some(self.file.engine.fetch(self.file.pages[self.page_idx])?);
            }
            let Some(page) = self.current.as_ref() else {
                // Set on the line above; a storage error beats a panic if
                // that ever changes.
                return Err(Error::Storage("record cursor lost its page pin".into()));
            };
            let count = page.read().get_u32(COUNT_OFFSET) as usize;
            if self.slot >= count {
                self.current = None;
                self.page_idx += 1;
                self.slot = 0;
                continue;
            }
            let off = HEADER + self.slot * self.file.record_len;
            self.buf
                .copy_from_slice(page.read().get_slice(off, self.file.record_len));
            self.slot += 1;
            return Ok(Some(&self.buf));
        }
    }

    /// Remaining records (upper bound; exact for fully-written files).
    pub fn remaining_hint(&self) -> u64 {
        let consumed = self.page_idx as u64 * self.file.per_page as u64 + self.slot as u64;
        self.file.len.saturating_sub(consumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> StorageEngine {
        StorageEngine::in_memory(8)
    }

    #[test]
    fn rejects_bad_record_lengths() {
        let eng = engine();
        assert!(RecordFile::create(&eng, 0).is_err());
        assert!(RecordFile::create(&eng, PAGE_SIZE).is_err());
        assert!(RecordFile::create(&eng, PAGE_SIZE - HEADER).is_ok());
    }

    #[test]
    fn push_and_scan_round_trip_across_pages() {
        let eng = engine();
        // Large records so a page holds few and we cross page boundaries.
        let rec_len = 2048;
        let mut f = RecordFile::create(&eng, rec_len).unwrap();
        assert_eq!(f.records_per_page(), 3);
        let n = 10u8;
        for i in 0..n {
            f.push(&vec![i; rec_len]).unwrap();
        }
        assert_eq!(f.len(), n as u64);
        assert_eq!(f.num_pages(), 4);
        f.release_tail();

        let mut cur = f.cursor();
        let mut i = 0u8;
        while let Some(rec) = cur.next().unwrap() {
            assert!(rec.iter().all(|&b| b == i), "record {i}");
            i += 1;
        }
        assert_eq!(i, n);
    }

    #[test]
    fn push_rejects_wrong_size() {
        let eng = engine();
        let mut f = RecordFile::create(&eng, 16).unwrap();
        assert!(f.push(&[0u8; 15]).is_err());
        assert!(f.is_empty());
    }

    #[test]
    fn cursor_on_empty_file() {
        let eng = engine();
        let f = RecordFile::create(&eng, 16).unwrap();
        assert_eq!(f.cursor().next().unwrap(), None);
    }

    #[test]
    fn interleaved_append_and_scan() {
        let eng = engine();
        let mut f = RecordFile::create(&eng, 8).unwrap();
        f.push(&1u64.to_le_bytes()).unwrap();
        f.release_tail();
        {
            let mut cur = f.cursor();
            assert_eq!(cur.next().unwrap().unwrap(), 1u64.to_le_bytes());
        }
        f.push(&2u64.to_le_bytes()).unwrap();
        f.release_tail();
        let all = f.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], 2u64.to_le_bytes());
    }

    #[test]
    fn remaining_hint_counts_down() {
        let eng = engine();
        let mut f = RecordFile::create(&eng, 8).unwrap();
        for i in 0..5u64 {
            f.push(&i.to_le_bytes()).unwrap();
        }
        f.release_tail();
        let mut cur = f.cursor();
        assert_eq!(cur.remaining_hint(), 5);
        cur.next().unwrap();
        assert_eq!(cur.remaining_hint(), 4);
    }

    #[test]
    fn bulk_load_keeps_tail_pinned() {
        let eng = StorageEngine::in_memory(4);
        let mut f = RecordFile::create(&eng, 64).unwrap();
        eng.reset_counters();
        for _ in 0..100 {
            f.push(&[7u8; 64]).unwrap();
        }
        // 100 records fit in one page (127 per page): exactly one alloc, no
        // reads.
        let io = eng.io_counters();
        assert_eq!(io.allocs, 1);
        assert_eq!(io.reads, 0);
    }

    #[test]
    fn scan_io_is_one_read_per_cold_page() {
        // Pool too small to keep the file resident: scanning must read
        // every page exactly once.
        let eng = StorageEngine::in_memory(2);
        let rec_len = 2048; // 3 per page
        let mut f = RecordFile::create(&eng, rec_len).unwrap();
        for i in 0..30u8 {
            f.push(&vec![i; rec_len]).unwrap();
        }
        f.release_tail();
        eng.flush_all().unwrap();
        // Evict everything by filling the pool with other pages.
        let _x = eng.alloc().unwrap();
        let _y = eng.alloc().unwrap();
        eng.reset_counters();
        drop((_x, _y));
        let mut cur = f.cursor();
        let mut n = 0;
        while cur.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 30);
        assert_eq!(eng.io_counters().reads, f.num_pages() as u64);
    }

    #[test]
    fn storage_fault_propagates_through_push() {
        let eng = StorageEngine::in_memory(4);
        let mut f = RecordFile::create(&eng, 16).unwrap();
        eng.set_fault_after(Some(1)); // the page alloc for the first record
        assert!(f.push(&[0u8; 16]).is_err());
        eng.set_fault_after(None);
    }
}

#[cfg(test)]
mod destroy_tests {
    use super::*;

    #[test]
    fn destroy_returns_pages_to_the_freelist() {
        let eng = StorageEngine::in_memory(8);
        let mut f = RecordFile::create(&eng, 2048).unwrap();
        for i in 0..9u8 {
            f.push(&vec![i; 2048]).unwrap();
        }
        let pages = f.num_pages();
        assert!(pages >= 3);
        f.destroy().unwrap();
        assert_eq!(eng.pool().free_pages(), pages);
        // New file reuses the pages: disk stays the same size.
        let before = eng.pool().num_pages();
        let mut g = RecordFile::create(&eng, 2048).unwrap();
        for i in 0..9u8 {
            g.push(&vec![i; 2048]).unwrap();
        }
        assert_eq!(eng.pool().num_pages(), before, "no disk growth");
        assert_eq!(g.read_all().unwrap().len(), 9);
    }

    #[test]
    fn repeated_sort_pipelines_do_not_grow_the_disk_unboundedly() {
        // The MSJ pattern: build + sort + destroy, many times over.
        use crate::sort::{external_sort, SortConfig};
        let eng = StorageEngine::in_memory(64);
        let mut sizes = Vec::new();
        for round in 0..5u32 {
            let mut f = RecordFile::create(&eng, 16).unwrap();
            for i in 0..2000u32 {
                let mut rec = [0u8; 16];
                rec[..4].copy_from_slice(&(i.wrapping_mul(2654435761 + round)).to_be_bytes());
                f.push(&rec).unwrap();
            }
            f.release_tail();
            let sorted = external_sort(
                &eng,
                &f,
                4,
                SortConfig {
                    mem_records: 256,
                    fanin: 4,
                    ..SortConfig::default()
                },
            )
            .unwrap();
            f.destroy().unwrap();
            sorted.destroy().unwrap();
            sizes.push(eng.pool().num_pages());
        }
        // After the first round the page pool reaches steady state.
        assert_eq!(sizes[1], *sizes.last().unwrap(), "{sizes:?}");
    }
}

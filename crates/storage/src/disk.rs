//! Backing stores: the `Disk` trait and its in-memory / file-backed
//! implementations.
//!
//! Fault injection does not live here: wrap any disk in
//! [`crate::fault::FaultyDisk`] (which every [`crate::StorageEngine`]
//! does) to schedule failures.

use crate::invariants::{self, rank};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use hdsj_core::{Error, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::sync::Arc;
use std::time::Instant;

/// A linear array of pages addressed by [`PageId`]. All traffic is counted
/// in the shared [`IoStats`].
pub trait Disk: Send + Sync {
    /// Reads page `id` into `into`.
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()>;
    /// Writes `page` at `id`.
    fn write_page(&self, id: PageId, page: &Page) -> Result<()>;
    /// Appends a zeroed page, returning its id.
    fn alloc_page(&self) -> Result<PageId>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
    /// Forces written pages down to durable storage. A no-op by default
    /// (in-memory disks have nothing to sync); the file-backed disk maps
    /// this to `fsync`, which the checkpoint machinery calls before
    /// sealing a manifest record — pages must be durable *before* the
    /// record that points at them.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// An in-memory disk: fast, deterministic, but it still *counts* like a
/// disk, which is all the I/O experiments need.
pub struct MemDisk {
    pages: Mutex<Vec<Page>>,
    stats: Arc<IoStats>,
}

impl MemDisk {
    /// Creates an empty in-memory disk sharing `stats`.
    pub fn new(stats: Arc<IoStats>) -> MemDisk {
        MemDisk {
            pages: Mutex::new(Vec::new()),
            stats,
        }
    }
}

impl Disk for MemDisk {
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()> {
        let _rank = invariants::ordered(rank::DISK, "disk.pages");
        let started = Instant::now();
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or_else(|| Error::Storage(format!("read of unallocated page {id}")))?;
        into.bytes_mut().copy_from_slice(page.bytes());
        self.stats.record_read_timed(started.elapsed());
        Ok(())
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        let _rank = invariants::ordered(rank::DISK, "disk.pages");
        let started = Instant::now();
        let mut pages = self.pages.lock();
        let slot = pages
            .get_mut(id as usize)
            .ok_or_else(|| Error::Storage(format!("write of unallocated page {id}")))?;
        slot.bytes_mut().copy_from_slice(page.bytes());
        self.stats.record_write_timed(started.elapsed());
        Ok(())
    }

    fn alloc_page(&self) -> Result<PageId> {
        let _rank = invariants::ordered(rank::DISK, "disk.pages");
        let mut pages = self.pages.lock();
        pages.push(Page::zeroed());
        self.stats.record_alloc();
        Ok((pages.len() - 1) as PageId)
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// A disk backed by one operating-system file, pages stored back to back.
///
/// Reads and writes use positioned I/O (`pread`/`pwrite` on Unix): one
/// syscall per page instead of seek-then-transfer, and no shared seek
/// cursor to serialize on. Non-Unix builds fall back to seeking under a
/// lock.
pub struct FileDisk {
    file: File,
    num_pages: Mutex<u64>,
    /// Serializes the seek-based fallback; unused on Unix.
    #[cfg(not(unix))]
    io_lock: Mutex<()>,
    stats: Arc<IoStats>,
}

impl FileDisk {
    /// Creates (truncating) the backing file.
    pub fn create(path: &std::path::Path, stats: Arc<IoStats>) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            file,
            num_pages: Mutex::new(0),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
            stats,
        })
    }

    /// Opens an existing backing file *without* truncating it — the
    /// recovery path. The page count is whatever the file holds (a
    /// partial trailing page from a torn grow is dropped; the manifest
    /// never references a page that was not synced).
    pub fn open(path: &std::path::Path, stats: Arc<IoStats>) -> Result<FileDisk> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDisk {
            file,
            num_pages: Mutex::new(len / PAGE_SIZE as u64),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
            stats,
        })
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(unix)]
    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, offset)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _rank = invariants::ordered(rank::DISK, "disk.io_lock");
        let _guard = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _rank = invariants::ordered(rank::DISK, "disk.io_lock");
        let _guard = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)?;
        Ok(())
    }
}

impl Disk for FileDisk {
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()> {
        if id >= *self.num_pages.lock() {
            return Err(Error::Storage(format!("read of unallocated page {id}")));
        }
        let started = Instant::now();
        self.read_at(&mut into.bytes_mut()[..], id * PAGE_SIZE as u64)?;
        self.stats.record_read_timed(started.elapsed());
        Ok(())
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        if id >= *self.num_pages.lock() {
            return Err(Error::Storage(format!("write of unallocated page {id}")));
        }
        let started = Instant::now();
        self.write_at(&page.bytes()[..], id * PAGE_SIZE as u64)?;
        self.stats.record_write_timed(started.elapsed());
        Ok(())
    }

    fn alloc_page(&self) -> Result<PageId> {
        // Hold the page-count lock across the zero-fill so concurrent
        // allocs get distinct ids and the file grows densely.
        let _rank = invariants::ordered(rank::DISK, "disk.num_pages");
        let mut n = self.num_pages.lock();
        let id = *n;
        self.write_at(&[0u8; PAGE_SIZE], id * PAGE_SIZE as u64)?;
        *n += 1;
        self.stats.record_alloc();
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        *self.num_pages.lock()
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let a = disk.alloc_page().unwrap();
        let b = disk.alloc_page().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(disk.num_pages(), 2);

        let mut p = Page::zeroed();
        p.put_u64(16, 42);
        disk.write_page(b, &p).unwrap();

        let mut q = Page::zeroed();
        disk.read_page(b, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 42);
        disk.read_page(a, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 0, "page a stays zeroed");

        assert!(disk.read_page(99, &mut q).is_err());
        assert!(disk.write_page(99, &p).is_err());
    }

    #[test]
    fn mem_disk_round_trip() {
        let disk = MemDisk::new(Arc::new(IoStats::default()));
        exercise(&disk);
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("hdsj-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let disk = FileDisk::create(&path, Arc::new(IoStats::default())).unwrap();
        exercise(&disk);
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_disk_reopens_with_data_intact() {
        let dir = std::env::temp_dir().join(format!("hdsj-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let disk = FileDisk::create(&path, Arc::new(IoStats::default())).unwrap();
            let a = disk.alloc_page().unwrap();
            let b = disk.alloc_page().unwrap();
            let mut p = Page::zeroed();
            p.put_u64(16, 0xABCD);
            disk.write_page(b, &p).unwrap();
            p.put_u64(16, 0x1234);
            disk.write_page(a, &p).unwrap();
            disk.sync().unwrap();
        }
        let disk = FileDisk::open(&path, Arc::new(IoStats::default())).unwrap();
        assert_eq!(disk.num_pages(), 2);
        let mut q = Page::zeroed();
        disk.read_page(0, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 0x1234);
        disk.read_page(1, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 0xABCD);
        // Re-opened disks keep allocating past the existing pages.
        assert_eq!(disk.alloc_page().unwrap(), 2);
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_disk_concurrent_positioned_io() {
        // Positioned I/O has no shared cursor: concurrent readers and
        // writers on different pages must not interleave each other's
        // offsets.
        let dir = std::env::temp_dir().join(format!("hdsj-pdisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let disk = Arc::new(
            FileDisk::create(&dir.join("pages.db"), Arc::new(IoStats::default())).unwrap(),
        );
        let n = 16u64;
        for _ in 0..n {
            disk.alloc_page().unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let disk = Arc::clone(&disk);
                s.spawn(move || {
                    for id in (t..n).step_by(4) {
                        let mut p = Page::zeroed();
                        p.put_u64(64, id * 1000 + t);
                        disk.write_page(id, &p).unwrap();
                    }
                });
            }
        });
        for id in 0..n {
            let mut p = Page::zeroed();
            disk.read_page(id, &mut p).unwrap();
            assert_eq!(p.get_u64(64), id * 1000 + id % 4, "page {id}");
        }
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_track_operations() {
        let stats = Arc::new(IoStats::default());
        let disk = MemDisk::new(Arc::clone(&stats));
        let id = disk.alloc_page().unwrap();
        let p = Page::zeroed();
        disk.write_page(id, &p).unwrap();
        let mut q = Page::zeroed();
        disk.read_page(id, &mut q).unwrap();
        let snap = stats.snapshot();
        assert_eq!((snap.allocs, snap.writes, snap.reads), (1, 1, 1));
    }
}

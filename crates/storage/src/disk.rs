//! Backing stores: the `Disk` trait and its in-memory / file-backed
//! implementations.

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use hdsj_core::{Error, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;

/// A linear array of pages addressed by [`PageId`]. All traffic is counted
/// in the shared [`IoStats`], and every operation honours the fault
/// injection trigger.
pub trait Disk: Send + Sync {
    /// Reads page `id` into `into`.
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()>;
    /// Writes `page` at `id`.
    fn write_page(&self, id: PageId, page: &Page) -> Result<()>;
    /// Appends a zeroed page, returning its id.
    fn alloc_page(&self) -> Result<PageId>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

fn fault(stats: &IoStats, op: &str) -> Result<()> {
    if stats.should_fault() {
        Err(Error::Storage(format!("injected fault during {op}")))
    } else {
        Ok(())
    }
}

/// An in-memory disk: fast, deterministic, but it still *counts* like a
/// disk, which is all the I/O experiments need.
pub struct MemDisk {
    pages: Mutex<Vec<Page>>,
    stats: Arc<IoStats>,
}

impl MemDisk {
    /// Creates an empty in-memory disk sharing `stats`.
    pub fn new(stats: Arc<IoStats>) -> MemDisk {
        MemDisk {
            pages: Mutex::new(Vec::new()),
            stats,
        }
    }
}

impl Disk for MemDisk {
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()> {
        fault(&self.stats, "read")?;
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or_else(|| Error::Storage(format!("read of unallocated page {id}")))?;
        into.bytes_mut().copy_from_slice(page.bytes());
        self.stats.record_read();
        Ok(())
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        fault(&self.stats, "write")?;
        let mut pages = self.pages.lock();
        let slot = pages
            .get_mut(id as usize)
            .ok_or_else(|| Error::Storage(format!("write of unallocated page {id}")))?;
        slot.bytes_mut().copy_from_slice(page.bytes());
        self.stats.record_write();
        Ok(())
    }

    fn alloc_page(&self) -> Result<PageId> {
        fault(&self.stats, "alloc")?;
        let mut pages = self.pages.lock();
        pages.push(Page::zeroed());
        self.stats.record_alloc();
        Ok((pages.len() - 1) as PageId)
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// A disk backed by one operating-system file, pages stored back to back.
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: Mutex<u64>,
    stats: Arc<IoStats>,
}

impl FileDisk {
    /// Creates (truncating) the backing file.
    pub fn create(path: &std::path::Path, stats: Arc<IoStats>) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            file: Mutex::new(file),
            num_pages: Mutex::new(0),
            stats,
        })
    }
}

impl Disk for FileDisk {
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()> {
        fault(&self.stats, "read")?;
        if id >= *self.num_pages.lock() {
            return Err(Error::Storage(format!("read of unallocated page {id}")));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.read_exact(&mut into.bytes_mut()[..])?;
        self.stats.record_read();
        Ok(())
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        fault(&self.stats, "write")?;
        if id >= *self.num_pages.lock() {
            return Err(Error::Storage(format!("write of unallocated page {id}")));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(&page.bytes()[..])?;
        self.stats.record_write();
        Ok(())
    }

    fn alloc_page(&self) -> Result<PageId> {
        fault(&self.stats, "alloc")?;
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(&[0u8; PAGE_SIZE])?;
        *n += 1;
        self.stats.record_alloc();
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        *self.num_pages.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let a = disk.alloc_page().unwrap();
        let b = disk.alloc_page().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(disk.num_pages(), 2);

        let mut p = Page::zeroed();
        p.put_u64(16, 42);
        disk.write_page(b, &p).unwrap();

        let mut q = Page::zeroed();
        disk.read_page(b, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 42);
        disk.read_page(a, &mut q).unwrap();
        assert_eq!(q.get_u64(16), 0, "page a stays zeroed");

        assert!(disk.read_page(99, &mut q).is_err());
        assert!(disk.write_page(99, &p).is_err());
    }

    #[test]
    fn mem_disk_round_trip() {
        let disk = MemDisk::new(Arc::new(IoStats::default()));
        exercise(&disk);
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("hdsj-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let disk = FileDisk::create(&path, Arc::new(IoStats::default())).unwrap();
        exercise(&disk);
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_track_operations() {
        let stats = Arc::new(IoStats::default());
        let disk = MemDisk::new(Arc::clone(&stats));
        let id = disk.alloc_page().unwrap();
        let p = Page::zeroed();
        disk.write_page(id, &p).unwrap();
        let mut q = Page::zeroed();
        disk.read_page(id, &mut q).unwrap();
        let snap = stats.snapshot();
        assert_eq!((snap.allocs, snap.writes, snap.reads), (1, 1, 1));
    }

    #[test]
    fn injected_fault_surfaces_as_storage_error() {
        let stats = Arc::new(IoStats::default());
        let disk = MemDisk::new(Arc::clone(&stats));
        let id = disk.alloc_page().unwrap();
        stats.set_fault_after(Some(1));
        let mut p = Page::zeroed();
        let err = disk.read_page(id, &mut p).unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
        // Disarmed after firing: next op succeeds.
        disk.read_page(id, &mut p).unwrap();
    }
}

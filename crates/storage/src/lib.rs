//! # hdsj-storage — a small paged storage engine with measured I/O
//!
//! The paper's evaluation reports disk behaviour, not just CPU time. To
//! reproduce those figures without 1998 hardware, every disk-based algorithm
//! in this workspace runs on this engine, which *counts* page traffic
//! instead of guessing it:
//!
//! * [`page::Page`] — fixed 8 KiB pages with typed read/write accessors and
//!   a checksummed header ([`page::PAGE_HEADER`] bytes of CRC-32 + magic)
//!   that turns silent corruption into [`hdsj_core::Error::Corruption`];
//! * [`disk::Disk`] — the backing store trait, with an in-memory
//!   implementation ([`disk::MemDisk`]) for tests/benches and a real
//!   file-backed one ([`disk::FileDisk`], positioned I/O on Unix);
//! * [`fault::FaultyDisk`] — a decorator that injects faults from a
//!   seedable [`fault::FaultPlan`] (probabilities, fault-on-Nth schedules,
//!   transient/persistent errors, torn and corrupting writes). Every
//!   engine carries one, disarmed by default;
//! * [`pool::BufferPool`] — a pin/unpin LRU buffer pool with dirty-page
//!   write-back; all reads and writes flow through it, so the
//!   [`stats::IoStats`] counters are exactly the page transfers a real
//!   system would perform. The pool seals/verifies page checksums and
//!   retries transient disk faults under a [`pool::RetryPolicy`];
//! * [`file::RecordFile`] — append-only files of fixed-size records on top
//!   of the pool (MSJ's level files, sort runs);
//! * [`sort::external_sort`] — multi-way external merge sort over record
//!   files, ordering records by a byte-prefix key (big-endian keys compare
//!   with `memcmp`).
//!
//! [`StorageEngine`] bundles disk, fault plan, and pool behind one handle
//! that the algorithm crates share; [`StorageEngine::builder`] configures
//! retries and fault schedules.
#![forbid(unsafe_code)]

pub mod disk;
pub mod fault;
pub mod file;
pub mod invariants;
pub mod manifest;
pub mod page;
pub mod points;
pub mod pool;
pub mod sort;
pub mod stats;

pub use fault::{FaultKind, FaultPlan, FaultyDisk, OpKind};
pub use file::{RecordCursor, RecordFile};
pub use manifest::{Checkpointer, FileSpec, Manifest, ManifestRecord, ManifestState};
pub use page::{crc32, Page, PageId, PAGE_HEADER, PAGE_SIZE};
pub use points::{disk_block_nested_loops, PointFile};
pub use pool::{BufferPool, PinnedPage, RetryPolicy};
pub use stats::IoStats;

use hdsj_core::{IoCounters, Result};
use std::sync::Arc;

/// A disk plus a buffer pool: the handle the join algorithms hold.
///
/// Cloning is cheap (shared `Arc`s); clones see the same pages, the same
/// I/O counters, and the same fault plan.
#[derive(Clone)]
pub struct StorageEngine {
    pool: Arc<BufferPool>,
    plan: FaultPlan,
}

/// Configures a [`StorageEngine`] before creation: pool size, retry
/// policy, and fault schedule.
pub struct EngineBuilder {
    pool_pages: usize,
    retry: RetryPolicy,
    plan: FaultPlan,
}

impl EngineBuilder {
    /// Sets the retry policy the buffer pool applies to transient disk
    /// faults (default: [`RetryPolicy::none`]).
    pub fn retry(mut self, retry: RetryPolicy) -> EngineBuilder {
        self.retry = retry;
        self
    }

    /// Installs a fault schedule (default: an empty, disarmed plan).
    pub fn faults(mut self, plan: FaultPlan) -> EngineBuilder {
        self.plan = plan;
        self
    }

    /// Builds an engine over an in-memory disk.
    pub fn in_memory(self) -> StorageEngine {
        let stats = Arc::new(IoStats::default());
        let inner = Box::new(disk::MemDisk::new(Arc::clone(&stats)));
        self.finish(inner, stats)
    }

    /// Builds an engine over a real file at `path` (created/truncated).
    pub fn file_backed(self, path: &std::path::Path) -> Result<StorageEngine> {
        let stats = Arc::new(IoStats::default());
        let inner = Box::new(disk::FileDisk::create(path, Arc::clone(&stats))?);
        Ok(self.finish(inner, stats))
    }

    /// Builds an engine over an *existing* file at `path` without
    /// truncating it — the recovery path. Pair with
    /// [`StorageEngine::adopt_freelist`] to hand back the pages a
    /// crashed run left unreferenced.
    pub fn file_backed_open(self, path: &std::path::Path) -> Result<StorageEngine> {
        let stats = Arc::new(IoStats::default());
        let inner = Box::new(disk::FileDisk::open(path, Arc::clone(&stats))?);
        Ok(self.finish(inner, stats))
    }

    fn finish(self, inner: Box<dyn disk::Disk>, stats: Arc<IoStats>) -> StorageEngine {
        // Every engine goes through FaultyDisk: with an empty plan the
        // armed-flag fast path makes it free, and tests can schedule
        // faults on a live engine without rebuilding it.
        let disk = Box::new(FaultyDisk::new(
            inner,
            self.plan.clone(),
            Arc::clone(&stats),
        ));
        StorageEngine {
            pool: Arc::new(BufferPool::with_retry(
                disk,
                self.pool_pages,
                stats,
                self.retry,
            )),
            plan: self.plan,
        }
    }
}

impl StorageEngine {
    /// Starts configuring an engine with a pool of `pool_pages` frames.
    pub fn builder(pool_pages: usize) -> EngineBuilder {
        EngineBuilder {
            pool_pages,
            retry: RetryPolicy::none(),
            plan: FaultPlan::empty(),
        }
    }

    /// Engine backed by an in-memory "disk" with a pool of `pool_pages`
    /// frames. I/O counters still track every simulated page transfer.
    pub fn in_memory(pool_pages: usize) -> StorageEngine {
        StorageEngine::builder(pool_pages).in_memory()
    }

    /// Engine backed by a real file at `path` (created/truncated) with a
    /// pool of `pool_pages` frames.
    pub fn file_backed(path: &std::path::Path, pool_pages: usize) -> Result<StorageEngine> {
        StorageEngine::builder(pool_pages).file_backed(path)
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The engine's fault plan — schedule faults on it at any time; it is
    /// shared with the disk decorator.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Allocates a fresh zeroed page and returns it pinned.
    pub fn alloc(&self) -> Result<PinnedPage> {
        self.pool.alloc()
    }

    /// Fetches page `id`, reading it from disk on a pool miss. The returned
    /// guard keeps the page pinned until dropped.
    pub fn fetch(&self, id: PageId) -> Result<PinnedPage> {
        self.pool.fetch(id)
    }

    /// Flushes every dirty page back to the disk.
    pub fn flush_all(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Forces flushed pages down to durable storage (`fsync` on
    /// file-backed engines; a no-op in memory).
    pub fn sync(&self) -> Result<()> {
        self.pool.sync()
    }

    /// Installs a per-query lifecycle context: every disk operation polls
    /// it and charges its budgets. See [`BufferPool::set_lifecycle`].
    pub fn set_lifecycle(&self, ctx: hdsj_core::LifecycleCtx) {
        self.pool.set_lifecycle(ctx)
    }

    /// Removes the lifecycle context (between queries on a shared
    /// engine).
    pub fn clear_lifecycle(&self) {
        self.pool.clear_lifecycle()
    }

    /// Replaces the pool freelist — the recovery path after
    /// [`EngineBuilder::file_backed_open`]. See
    /// [`BufferPool::adopt_freelist`].
    pub fn adopt_freelist(&self, pages: Vec<PageId>) -> Result<()> {
        self.pool.adopt_freelist(pages)
    }

    /// Returns page `id` to the freelist for reuse by later allocations.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.pool.free(id)
    }

    /// Snapshot of the I/O counters in `hdsj-core` form.
    pub fn io_counters(&self) -> IoCounters {
        self.pool.stats().snapshot()
    }

    /// Resets the I/O counters (e.g. between join phases).
    pub fn reset_counters(&self) {
        self.pool.stats().reset()
    }

    /// Injects a one-shot fault: the `n`-th disk operation from now fails
    /// with a transient storage error. `None` disarms. Shorthand for the
    /// equivalent [`FaultPlan::set_fault_after`]; richer schedules go
    /// through [`StorageEngine::fault_plan`] or
    /// [`EngineBuilder::faults`].
    pub fn set_fault_after(&self, n: Option<u64>) {
        self.plan.set_fault_after(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_round_trips_pages_and_counts_io() {
        let eng = StorageEngine::in_memory(2);
        let id = {
            let p = eng.alloc().unwrap();
            p.write().put_u64(PAGE_HEADER, 0xdead_beef);
            p.id()
        };
        // Force eviction by touching two more pages.
        let _a = eng.alloc().unwrap().id();
        let _b = eng.alloc().unwrap().id();
        let back = eng.fetch(id).unwrap();
        assert_eq!(back.read().get_u64(PAGE_HEADER), 0xdead_beef);
        let io = eng.io_counters();
        assert!(io.allocs >= 3);
        assert!(io.writes >= 1, "eviction must have written the dirty page");
        assert!(io.reads >= 1, "re-fetch must have read from disk");
    }

    #[test]
    fn clones_share_state() {
        let eng = StorageEngine::in_memory(4);
        let id = eng.alloc().unwrap().id();
        let clone = eng.clone();
        assert!(clone.fetch(id).is_ok());
        assert_eq!(eng.io_counters(), clone.io_counters());
    }

    #[test]
    fn reset_clears_counters() {
        let eng = StorageEngine::in_memory(4);
        let _ = eng.alloc().unwrap();
        eng.reset_counters();
        assert_eq!(eng.io_counters(), IoCounters::default());
    }

    #[test]
    fn clones_share_the_fault_plan() {
        let eng = StorageEngine::in_memory(4);
        let clone = eng.clone();
        clone.set_fault_after(Some(1));
        assert!(eng.alloc().is_err(), "fault armed through the clone");
        assert!(eng.alloc().is_ok(), "one-shot fault clears itself");
    }

    #[test]
    fn builder_wires_retry_and_faults() {
        let plan = FaultPlan::new(7);
        plan.on_nth(Some(OpKind::Alloc), 1, FaultKind::Transient);
        let eng = StorageEngine::builder(4)
            .retry(RetryPolicy::backoff(2))
            .faults(plan)
            .in_memory();
        // The transient alloc fault is retried away.
        let p = eng.alloc().unwrap();
        drop(p);
        let io = eng.io_counters();
        assert_eq!(io.faults, 1);
        assert_eq!(io.retries, 1);
    }

    #[test]
    fn sealed_pages_survive_a_file_backed_round_trip() {
        let dir = std::env::temp_dir().join(format!("hdsj-eng-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.db");
        let eng = StorageEngine::file_backed(&path, 2).unwrap();
        let id = {
            let p = eng.alloc().unwrap();
            p.write().put_u64(PAGE_HEADER, 31337);
            p.id()
        };
        eng.flush_all().unwrap();
        // Evict, then re-read: the page was sealed on flush and verifies.
        drop(eng.alloc().unwrap());
        drop(eng.alloc().unwrap());
        let back = eng.fetch(id).unwrap();
        assert_eq!(back.read().get_u64(PAGE_HEADER), 31337);
        drop(back);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! # hdsj-storage — a small paged storage engine with measured I/O
//!
//! The paper's evaluation reports disk behaviour, not just CPU time. To
//! reproduce those figures without 1998 hardware, every disk-based algorithm
//! in this workspace runs on this engine, which *counts* page traffic
//! instead of guessing it:
//!
//! * [`page::Page`] — fixed 8 KiB pages with typed read/write accessors;
//! * [`disk::Disk`] — the backing store trait, with an in-memory
//!   implementation ([`disk::MemDisk`]) for tests/benches and a real
//!   file-backed one ([`disk::FileDisk`]);
//! * [`pool::BufferPool`] — a pin/unpin LRU buffer pool with dirty-page
//!   write-back; all reads and writes flow through it, so the
//!   [`stats::IoStats`] counters are exactly the page transfers a real
//!   system would perform;
//! * [`file::RecordFile`] — append-only files of fixed-size records on top
//!   of the pool (MSJ's level files, sort runs);
//! * [`sort::external_sort`] — multi-way external merge sort over record
//!   files, ordering records by a byte-prefix key (big-endian keys compare
//!   with `memcmp`);
//! * fault injection ([`StorageEngine::set_fault_after`]) for the
//!   failure-path tests.
//!
//! [`StorageEngine`] bundles a disk and a pool behind one handle that the
//! algorithm crates share.

pub mod disk;
pub mod file;
pub mod page;
pub mod points;
pub mod pool;
pub mod sort;
pub mod stats;

pub use file::{RecordCursor, RecordFile};
pub use page::{Page, PageId, PAGE_SIZE};
pub use points::{disk_block_nested_loops, PointFile};
pub use pool::{BufferPool, PinnedPage};
pub use stats::IoStats;

use hdsj_core::{IoCounters, Result};
use std::sync::Arc;

/// A disk plus a buffer pool: the handle the join algorithms hold.
///
/// Cloning is cheap (shared `Arc`s); clones see the same pages and the same
/// I/O counters.
#[derive(Clone)]
pub struct StorageEngine {
    pool: Arc<BufferPool>,
}

impl StorageEngine {
    /// Engine backed by an in-memory "disk" with a pool of `pool_pages`
    /// frames. I/O counters still track every simulated page transfer.
    pub fn in_memory(pool_pages: usize) -> StorageEngine {
        let stats = Arc::new(IoStats::default());
        let disk = Box::new(disk::MemDisk::new(Arc::clone(&stats)));
        StorageEngine {
            pool: Arc::new(BufferPool::new(disk, pool_pages, stats)),
        }
    }

    /// Engine backed by a real file at `path` (created/truncated) with a
    /// pool of `pool_pages` frames.
    pub fn file_backed(path: &std::path::Path, pool_pages: usize) -> Result<StorageEngine> {
        let stats = Arc::new(IoStats::default());
        let disk = Box::new(disk::FileDisk::create(path, Arc::clone(&stats))?);
        Ok(StorageEngine {
            pool: Arc::new(BufferPool::new(disk, pool_pages, stats)),
        })
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Allocates a fresh zeroed page and returns it pinned.
    pub fn alloc(&self) -> Result<PinnedPage> {
        self.pool.alloc()
    }

    /// Fetches page `id`, reading it from disk on a pool miss. The returned
    /// guard keeps the page pinned until dropped.
    pub fn fetch(&self, id: PageId) -> Result<PinnedPage> {
        self.pool.fetch(id)
    }

    /// Flushes every dirty page back to the disk.
    pub fn flush_all(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Returns page `id` to the freelist for reuse by later allocations.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.pool.free(id)
    }

    /// Snapshot of the I/O counters in `hdsj-core` form.
    pub fn io_counters(&self) -> IoCounters {
        self.pool.stats().snapshot()
    }

    /// Resets the I/O counters (e.g. between join phases).
    pub fn reset_counters(&self) {
        self.pool.stats().reset()
    }

    /// Injects a fault: the `n`-th disk operation from now fails with a
    /// storage error. `None` disarms.
    pub fn set_fault_after(&self, n: Option<u64>) {
        self.pool.stats().set_fault_after(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_round_trips_pages_and_counts_io() {
        let eng = StorageEngine::in_memory(2);
        let id = {
            let p = eng.alloc().unwrap();
            p.write().put_u64(0, 0xdead_beef);
            p.id()
        };
        // Force eviction by touching two more pages.
        let _a = eng.alloc().unwrap().id();
        let _b = eng.alloc().unwrap().id();
        let back = eng.fetch(id).unwrap();
        assert_eq!(back.read().get_u64(0), 0xdead_beef);
        let io = eng.io_counters();
        assert!(io.allocs >= 3);
        assert!(io.writes >= 1, "eviction must have written the dirty page");
        assert!(io.reads >= 1, "re-fetch must have read from disk");
    }

    #[test]
    fn clones_share_state() {
        let eng = StorageEngine::in_memory(4);
        let id = eng.alloc().unwrap().id();
        let clone = eng.clone();
        assert!(clone.fetch(id).is_ok());
        assert_eq!(eng.io_counters(), clone.io_counters());
    }

    #[test]
    fn reset_clears_counters() {
        let eng = StorageEngine::in_memory(4);
        let _ = eng.alloc().unwrap();
        eng.reset_counters();
        assert_eq!(eng.io_counters(), IoCounters::default());
    }
}

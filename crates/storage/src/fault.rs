//! Deterministic fault injection: seedable plans and a faulty-disk
//! decorator.
//!
//! A [`FaultPlan`] decides, per disk operation, whether to inject a fault
//! and of what [`FaultKind`]. Plans combine three trigger styles:
//!
//! * **probabilities** — each matching operation faults with probability
//!   `p`, drawn from a seeded xorshift generator, so a given seed replays
//!   the exact same fault sequence;
//! * **fault-on-Nth schedules** — the `n`-th matching operation from now
//!   faults (the style the unit tests use for pinpoint failures);
//! * **a legacy one-shot** ([`FaultPlan::set_fault_after`]) — the `n`-th
//!   disk operation of any kind fails once, preserving the semantics of
//!   the original `IoStats` trigger.
//!
//! [`FaultyDisk`] wraps any [`Disk`] and consults the plan before every
//! operation. Failing kinds return [`Error::Storage`]; the *lying* kinds
//! ([`FaultKind::Torn`], [`FaultKind::Corrupt`]) damage page payloads so
//! the buffer pool's checksum verification can prove it catches them.
//! Damage is confined to payload bytes (`>= PAGE_HEADER`) — a fault model
//! where the injector shreds the checksum field itself tests nothing.
//!
//! Plans are cheap to clone and fully shared: arming a trigger on one
//! clone is seen by the disk holding another.

use crate::disk::Disk;
use crate::invariants::{self, rank};
use crate::page::{Page, PageId, PAGE_HEADER, PAGE_SIZE};
use crate::stats::IoStats;
use hdsj_core::{Error, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The disk operations a fault can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `Disk::read_page`.
    Read,
    /// `Disk::write_page`.
    Write,
    /// `Disk::alloc_page`.
    Alloc,
}

impl OpKind {
    /// Lower-case name used in error messages and fault specs.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Alloc => "alloc",
        }
    }
}

/// What an injected fault does to the operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails once with a storage error; an identical retry
    /// may succeed. Models bus resets, briefly unreachable devices.
    Transient,
    /// The targeted operation kind is dead from now on: every later
    /// matching operation fails. Models a failed device.
    Persistent,
    /// Writes only: a prefix of the new page image reaches the medium,
    /// the rest keeps the old bytes, and the write reports failure.
    /// Models power loss mid-write.
    Torn,
    /// The payload is bit-flipped. A corrupt *write* persists the damaged
    /// image and reports success; a corrupt *read* delivers damaged
    /// bytes. Either way the error surfaces only when the pool's checksum
    /// check catches it.
    Corrupt,
}

impl FaultKind {
    /// Lower-case name used in error messages and fault specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
            FaultKind::Torn => "torn",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// A fault-on-Nth schedule entry. `op == None` matches any operation.
struct Trigger {
    op: Option<OpKind>,
    countdown: u64,
    kind: FaultKind,
}

/// A probabilistic entry. `op == None` matches any operation.
struct ProbRule {
    op: Option<OpKind>,
    p: f64,
    kind: FaultKind,
}

/// A seeded crash fault: the `countdown`-th hit of the named checkpoint
/// aborts the process (no unwinding, no destructors — the hardest kill a
/// test can deliver in-process). Exercised only through child processes
/// by the kill-and-restart chaos harness.
struct CrashRule {
    name: String,
    countdown: u64,
}

struct PlanState {
    rng: u64,
    probs: Vec<ProbRule>,
    triggers: Vec<Trigger>,
    dead: Vec<OpKind>,
    crashes: Vec<CrashRule>,
    /// Legacy one-shot: remaining any-op operations until a single
    /// transient fault.
    one_shot: Option<u64>,
}

impl PlanState {
    fn next_u64(&mut self) -> u64 {
        // xorshift64: fast, deterministic, good enough for fault dice.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn has_work(&self) -> bool {
        !self.probs.is_empty()
            || !self.triggers.is_empty()
            || !self.dead.is_empty()
            || !self.crashes.is_empty()
            || self.one_shot.is_some()
    }

    fn decide(&mut self, op: OpKind) -> Option<FaultKind> {
        if self.dead.contains(&op) {
            return Some(FaultKind::Persistent);
        }
        let mut fired: Option<FaultKind> = None;
        // Every matching countdown advances on every matching op, whether
        // or not an earlier rule already fired — schedules count
        // operations, not survivors.
        if let Some(n) = self.one_shot.as_mut() {
            *n -= 1;
            if *n == 0 {
                self.one_shot = None;
                fired = Some(FaultKind::Transient);
            }
        }
        let mut i = 0;
        while i < self.triggers.len() {
            let matches = self.triggers[i].op.is_none_or(|o| o == op);
            if matches {
                self.triggers[i].countdown -= 1;
                if self.triggers[i].countdown == 0 {
                    let t = self.triggers.swap_remove(i);
                    if t.kind == FaultKind::Persistent {
                        self.kill(t.op, op);
                    }
                    fired = fired.or(Some(t.kind));
                    continue;
                }
            }
            i += 1;
        }
        if fired.is_some() {
            return fired;
        }
        for i in 0..self.probs.len() {
            if self.probs[i].op.is_none_or(|o| o == op) {
                let roll = self.next_f64();
                if roll < self.probs[i].p {
                    let (rule_op, kind) = (self.probs[i].op, self.probs[i].kind);
                    if kind == FaultKind::Persistent {
                        self.kill(rule_op, op);
                    }
                    return Some(kind);
                }
            }
        }
        None
    }

    /// Marks the ops matched by a persistent rule as dead.
    fn kill(&mut self, rule_op: Option<OpKind>, hit: OpKind) {
        let ops: &[OpKind] = match rule_op {
            Some(_) => &[hit],
            None => &[OpKind::Read, OpKind::Write, OpKind::Alloc],
        };
        for &o in ops {
            if !self.dead.contains(&o) {
                self.dead.push(o);
            }
        }
    }
}

/// A seedable, shareable fault schedule. See the module docs for the
/// trigger styles; see [`FaultPlan::parse`] for the textual spec used by
/// the CLI's `--inject-faults`.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

struct PlanInner {
    /// Fast path: disks skip the mutex entirely while nothing is
    /// configured (the common case — every engine carries a plan).
    armed: AtomicBool,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty plan seeded with `seed`. Injects nothing until rules are
    /// added.
    pub fn new(seed: u64) -> FaultPlan {
        // splitmix64 scrambles the seed so 0/1/2… give unrelated streams
        // (and never the all-zero xorshift fixed point).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan {
            inner: Arc::new(PlanInner {
                armed: AtomicBool::new(false),
                state: Mutex::new(PlanState {
                    rng: z | 1,
                    probs: Vec::new(),
                    triggers: Vec::new(),
                    dead: Vec::new(),
                    crashes: Vec::new(),
                    one_shot: None,
                }),
            }),
        }
    }

    /// An empty, disarmed plan (what every engine starts with).
    pub fn empty() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// True when at least one rule is active.
    pub fn is_armed(&self) -> bool {
        // ORDERING: lock-free fast path; a stale read only means one extra
        // (or one skipped) trip through the state mutex, which then makes
        // the authoritative decision under its own happens-before.
        self.inner.armed.load(Ordering::Relaxed)
    }

    fn rearm(&self, state: &PlanState) {
        // ORDERING: written while holding the state mutex (the `state`
        // borrow proves it); readers that act on it re-check under that
        // same mutex, so this flag is purely advisory.
        self.inner.armed.store(state.has_work(), Ordering::Relaxed);
    }

    /// Each operation matching `op` (`None` = any) faults as `kind` with
    /// probability `p`.
    pub fn probability(&self, op: Option<OpKind>, p: f64, kind: FaultKind) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        st.probs.push(ProbRule { op, p, kind });
        self.rearm(&st);
    }

    /// The `n`-th (1-based) operation matching `op` from now faults as
    /// `kind`.
    pub fn on_nth(&self, op: Option<OpKind>, n: u64, kind: FaultKind) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        st.triggers.push(Trigger {
            op,
            countdown: n.max(1),
            kind,
        });
        self.rearm(&st);
    }

    /// Legacy one-shot trigger: `Some(n)` makes the `n`-th disk operation
    /// of any kind fail once (transient); `None` disarms it. Replaces the
    /// old `IoStats::set_fault_after`.
    pub fn set_fault_after(&self, n: Option<u64>) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        st.one_shot = n.map(|v| v.max(1));
        self.rearm(&st);
    }

    /// Clears every rule (probabilities, schedules, dead ops, crash
    /// points, one-shot).
    pub fn clear(&self) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        st.probs.clear();
        st.triggers.clear();
        st.dead.clear();
        st.crashes.clear();
        st.one_shot = None;
        self.rearm(&st);
    }

    /// Arms a crash fault: the `n`-th (1-based) hit of the checkpoint
    /// named `name` aborts the process. See [`FaultPlan::crash_point`].
    pub fn crash_at(&self, name: &str, n: u64) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        st.crashes.push(CrashRule {
            name: name.to_string(),
            countdown: n.max(1),
        });
        self.rearm(&st);
    }

    /// Remaining hits before the crash rule for `name` fires, if armed —
    /// introspection for tests (the firing itself is untestable
    /// in-process).
    pub fn crash_countdown(&self, name: &str) -> Option<u64> {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let st = self.inner.state.lock();
        st.crashes
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.countdown)
    }

    /// A named checkpoint in the checkpoint/recovery machinery. With a
    /// matching armed crash rule whose countdown reaches zero, the
    /// process dies on the spot via `std::process::abort` — no
    /// destructors, no flushes, exactly the torn state a power cut or
    /// SIGKILL leaves behind. Call sites name the durability boundaries
    /// (`msj.assign_sealed`, `sort.run_sealed`, `sort.merge_sealed`,
    /// `msj.sort_sealed`) so the chaos harness can kill a child `hdsj` at
    /// every one of them.
    pub fn crash_point(&self, name: &str) {
        if !self.is_armed() {
            return;
        }
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        let mut fire = false;
        for c in &mut st.crashes {
            if c.name == name {
                c.countdown -= 1;
                if c.countdown == 0 {
                    fire = true;
                }
            }
        }
        if fire {
            drop(st);
            eprintln!("fault: crash point `{name}` reached, aborting");
            std::process::abort();
        }
    }

    /// Consulted by [`FaultyDisk`] before each operation.
    pub fn decide(&self, op: OpKind) -> Option<FaultKind> {
        if !self.is_armed() {
            return None;
        }
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        let fault = st.decide(op);
        self.rearm(&st);
        fault
    }

    /// Flips a handful of payload bits (offsets `>= PAGE_HEADER`, so the
    /// checksum field itself stays intact and the damage is detectable).
    fn corrupt_payload(&self, page: &mut Page) {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        for _ in 0..4 {
            let off = PAGE_HEADER + (st.next_u64() as usize) % (PAGE_SIZE - PAGE_HEADER);
            let bit = 1u8 << (st.next_u64() % 8);
            page.bytes_mut()[off] ^= bit;
        }
    }

    /// How many leading bytes of a torn write survive. Always at least
    /// the page header, so the new checksum lands next to (partially) old
    /// payload — exactly the mismatch the verifier must catch.
    fn torn_cut(&self) -> usize {
        let _rank = invariants::ordered(rank::FAULT, "fault.state");
        let mut st = self.inner.state.lock();
        PAGE_HEADER + (st.next_u64() as usize) % (PAGE_SIZE - PAGE_HEADER)
    }

    /// Parses a comma-separated fault spec (the CLI's `--inject-faults`):
    ///
    /// * `seed=N` — seeds the random stream (default 0);
    /// * `<op>=<p>[:<kind>]` — probabilistic rule, `kind` defaults to
    ///   `transient`;
    /// * `<op>@<n>=<kind>` — the `n`-th op of that kind faults;
    /// * `crash=<point>@<n>` — the `n`-th hit of the named checkpoint
    ///   aborts the process (see [`FaultPlan::crash_point`]);
    ///
    /// with `<op>` one of `read`, `write`, `alloc`, `any` and `<kind>`
    /// one of `transient`, `persistent`, `torn`, `corrupt`. `torn` is
    /// write-only; `corrupt` applies to reads and writes.
    ///
    /// Example: `seed=7,read=0.01,write@3=torn,crash=sort.run_sealed@2`.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        fn bad(part: &str, why: &str) -> Error {
            Error::InvalidInput(format!("fault spec `{part}`: {why}"))
        }
        fn parse_op(s: &str, part: &str) -> Result<Option<OpKind>> {
            match s {
                "read" => Ok(Some(OpKind::Read)),
                "write" => Ok(Some(OpKind::Write)),
                "alloc" => Ok(Some(OpKind::Alloc)),
                "any" => Ok(None),
                _ => Err(bad(part, "op must be read|write|alloc|any")),
            }
        }
        fn parse_kind(s: &str, part: &str) -> Result<FaultKind> {
            match s {
                "transient" => Ok(FaultKind::Transient),
                "persistent" => Ok(FaultKind::Persistent),
                "torn" => Ok(FaultKind::Torn),
                "corrupt" => Ok(FaultKind::Corrupt),
                _ => Err(bad(part, "kind must be transient|persistent|torn|corrupt")),
            }
        }
        fn check_kind(op: Option<OpKind>, kind: FaultKind, part: &str) -> Result<()> {
            match kind {
                FaultKind::Torn if op != Some(OpKind::Write) => {
                    Err(bad(part, "torn faults apply to writes only"))
                }
                FaultKind::Corrupt
                    if !matches!(op, Some(OpKind::Read) | Some(OpKind::Write)) =>
                {
                    Err(bad(part, "corrupt faults apply to reads and writes"))
                }
                _ => Ok(()),
            }
        }

        let mut seed = 0u64;
        let mut rules: Vec<(Option<OpKind>, Rule)> = Vec::new();
        let mut crashes: Vec<(String, u64)> = Vec::new();
        enum Rule {
            Prob(f64, FaultKind),
            Nth(u64, FaultKind),
        }
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (lhs, rhs) = part
                .split_once('=')
                .ok_or_else(|| bad(part, "expected key=value"))?;
            if lhs == "seed" {
                seed = rhs
                    .parse()
                    .map_err(|_| bad(part, "seed must be an integer"))?;
                continue;
            }
            if lhs == "crash" {
                let (name, n_s) = rhs
                    .split_once('@')
                    .ok_or_else(|| bad(part, "crash needs point@N"))?;
                if name.is_empty() {
                    return Err(bad(part, "crash point name is empty"));
                }
                let n: u64 = n_s
                    .parse()
                    .map_err(|_| bad(part, "crash point@N needs an integer N"))?;
                if n == 0 {
                    return Err(bad(part, "N is 1-based"));
                }
                crashes.push((name.to_string(), n));
                continue;
            }
            if let Some((op_s, n_s)) = lhs.split_once('@') {
                let op = parse_op(op_s, part)?;
                let n: u64 = n_s
                    .parse()
                    .map_err(|_| bad(part, "op@N needs an integer N"))?;
                if n == 0 {
                    return Err(bad(part, "N is 1-based"));
                }
                let kind = parse_kind(rhs, part)?;
                check_kind(op, kind, part)?;
                rules.push((op, Rule::Nth(n, kind)));
            } else {
                let op = parse_op(lhs, part)?;
                let (p_s, kind_s) = match rhs.split_once(':') {
                    Some((p, k)) => (p, k),
                    None => (rhs, "transient"),
                };
                let p: f64 = p_s
                    .parse()
                    .map_err(|_| bad(part, "probability must be a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(part, "probability must be in [0, 1]"));
                }
                let kind = parse_kind(kind_s, part)?;
                check_kind(op, kind, part)?;
                rules.push((op, Rule::Prob(p, kind)));
            }
        }
        let plan = FaultPlan::new(seed);
        for (op, rule) in rules {
            match rule {
                Rule::Prob(p, kind) => plan.probability(op, p, kind),
                Rule::Nth(n, kind) => plan.on_nth(op, n, kind),
            }
        }
        for (name, n) in crashes {
            plan.crash_at(&name, n);
        }
        Ok(plan)
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultPlan(armed={})", self.is_armed())
    }
}

/// A [`Disk`] decorator that injects the faults its [`FaultPlan`]
/// schedules. Delivered faults are counted in the shared [`IoStats`]
/// (`faults` in the snapshot).
pub struct FaultyDisk {
    inner: Box<dyn Disk>,
    plan: FaultPlan,
    stats: Arc<IoStats>,
}

impl FaultyDisk {
    /// Wraps `inner`; faults follow `plan`, deliveries count in `stats`.
    pub fn new(inner: Box<dyn Disk>, plan: FaultPlan, stats: Arc<IoStats>) -> FaultyDisk {
        FaultyDisk { inner, plan, stats }
    }

    /// The plan driving this disk.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn fail(&self, kind: FaultKind, op: OpKind, id: Option<PageId>) -> Error {
        self.stats.record_fault();
        match id {
            Some(id) => Error::Storage(format!(
                "injected {} fault during {} of page {id}",
                kind.name(),
                op.name()
            )),
            None => Error::Storage(format!(
                "injected {} fault during {}",
                kind.name(),
                op.name()
            )),
        }
    }
}

impl Disk for FaultyDisk {
    fn read_page(&self, id: PageId, into: &mut Page) -> Result<()> {
        match self.plan.decide(OpKind::Read) {
            None => self.inner.read_page(id, into),
            Some(FaultKind::Corrupt) => {
                self.inner.read_page(id, into)?;
                self.plan.corrupt_payload(into);
                self.stats.record_fault();
                Ok(())
            }
            Some(kind) => Err(self.fail(kind, OpKind::Read, Some(id))),
        }
    }

    fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        match self.plan.decide(OpKind::Write) {
            None => self.inner.write_page(id, page),
            Some(FaultKind::Corrupt) => {
                let mut damaged = page.clone();
                self.plan.corrupt_payload(&mut damaged);
                self.inner.write_page(id, &damaged)?;
                // The medium lied: damage persisted, success reported.
                self.stats.record_fault();
                Ok(())
            }
            Some(FaultKind::Torn) => {
                let mut merged = Page::zeroed();
                if self.inner.read_page(id, &mut merged).is_err() {
                    // No old image to keep: the tear degrades to a full
                    // write that still reports failure.
                    merged = page.clone();
                }
                let cut = self.plan.torn_cut();
                merged.bytes_mut()[..cut].copy_from_slice(&page.bytes()[..cut]);
                self.inner.write_page(id, &merged)?;
                Err(self.fail(FaultKind::Torn, OpKind::Write, Some(id)))
            }
            Some(kind) => Err(self.fail(kind, OpKind::Write, Some(id))),
        }
    }

    fn alloc_page(&self) -> Result<PageId> {
        match self.plan.decide(OpKind::Alloc) {
            None => self.inner.alloc_page(),
            Some(kind) => Err(self.fail(kind, OpKind::Alloc, None)),
        }
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn rig(plan: FaultPlan) -> (FaultyDisk, Arc<IoStats>) {
        let stats = Arc::new(IoStats::default());
        let disk = FaultyDisk::new(
            Box::new(MemDisk::new(Arc::clone(&stats))),
            plan,
            Arc::clone(&stats),
        );
        (disk, stats)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let (disk, stats) = rig(FaultPlan::empty());
        let id = disk.alloc_page().unwrap();
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 3);
        disk.write_page(id, &p).unwrap();
        disk.read_page(id, &mut p).unwrap();
        assert_eq!(stats.snapshot().faults, 0);
    }

    #[test]
    fn one_shot_fires_exactly_on_nth_operation_then_disarms() {
        let (disk, stats) = rig(FaultPlan::empty());
        let id = disk.alloc_page().unwrap(); // before arming: free
        disk.plan().set_fault_after(Some(3));
        let mut p = Page::zeroed();
        disk.read_page(id, &mut p).unwrap(); // 1
        disk.read_page(id, &mut p).unwrap(); // 2
        let err = disk.read_page(id, &mut p).unwrap_err(); // 3: faults
        assert!(matches!(err, Error::Storage(_)), "{err}");
        disk.read_page(id, &mut p).unwrap(); // disarmed
        assert_eq!(stats.snapshot().faults, 1);
    }

    #[test]
    fn disarming_one_shot_clears_pending_fault() {
        let (disk, _) = rig(FaultPlan::empty());
        let id = disk.alloc_page().unwrap();
        disk.plan().set_fault_after(Some(1));
        disk.plan().set_fault_after(None);
        let mut p = Page::zeroed();
        disk.read_page(id, &mut p).unwrap();
    }

    #[test]
    fn nth_trigger_targets_only_its_op_kind() {
        let plan = FaultPlan::empty();
        plan.on_nth(Some(OpKind::Write), 2, FaultKind::Transient);
        let (disk, _) = rig(plan);
        let id = disk.alloc_page().unwrap();
        let mut p = Page::zeroed();
        disk.read_page(id, &mut p).unwrap(); // reads don't count
        disk.write_page(id, &p).unwrap(); // write 1
        assert!(disk.write_page(id, &p).is_err(), "write 2 faults");
        disk.write_page(id, &p).unwrap(); // transient: gone
    }

    #[test]
    fn persistent_fault_kills_the_op_kind() {
        let plan = FaultPlan::empty();
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Persistent);
        let (disk, _) = rig(plan);
        let id = disk.alloc_page().unwrap();
        let p = Page::zeroed();
        assert!(disk.write_page(id, &p).is_err());
        assert!(disk.write_page(id, &p).is_err(), "still dead");
        let mut q = Page::zeroed();
        disk.read_page(id, &mut q).unwrap(); // reads unaffected
    }

    #[test]
    fn corrupt_write_damages_payload_but_reports_success() {
        let plan = FaultPlan::new(42);
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Corrupt);
        let (disk, stats) = rig(plan);
        let id = disk.alloc_page().unwrap();
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 0xfeed);
        p.seal();
        disk.write_page(id, &p).unwrap();
        assert_eq!(stats.snapshot().faults, 1);
        let mut back = Page::zeroed();
        disk.read_page(id, &mut back).unwrap();
        assert!(back.verify_checksum().is_err(), "checksum must catch it");
    }

    #[test]
    fn corrupt_read_damages_delivered_bytes_not_the_medium() {
        let plan = FaultPlan::new(7);
        let (disk, _) = rig(plan.clone());
        let id = disk.alloc_page().unwrap();
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 0xabcd);
        p.seal();
        disk.write_page(id, &p).unwrap();
        plan.on_nth(Some(OpKind::Read), 1, FaultKind::Corrupt);
        let mut bad = Page::zeroed();
        disk.read_page(id, &mut bad).unwrap();
        assert!(bad.verify_checksum().is_err());
        // The next read sees the intact on-medium bytes.
        let mut good = Page::zeroed();
        disk.read_page(id, &mut good).unwrap();
        assert_eq!(good.verify_checksum(), Ok(()));
    }

    #[test]
    fn torn_write_reports_failure_and_leaves_mixed_image() {
        let plan = FaultPlan::new(3);
        let (disk, _) = rig(plan.clone());
        let id = disk.alloc_page().unwrap();
        let mut old = Page::zeroed();
        for off in (PAGE_HEADER..PAGE_SIZE).step_by(8) {
            old.put_u64(off, 0x1111_1111_1111_1111);
        }
        old.seal();
        disk.write_page(id, &old).unwrap();
        plan.on_nth(Some(OpKind::Write), 1, FaultKind::Torn);
        let mut new = Page::zeroed();
        for off in (PAGE_HEADER..PAGE_SIZE).step_by(8) {
            new.put_u64(off, 0x2222_2222_2222_2222);
        }
        new.seal();
        assert!(disk.write_page(id, &new).is_err(), "torn write must fail");
        let mut back = Page::zeroed();
        disk.read_page(id, &mut back).unwrap();
        assert!(
            back.verify_checksum().is_err(),
            "mixed old/new payload must fail the new checksum"
        );
    }

    #[test]
    fn probabilistic_plan_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed);
            plan.probability(Some(OpKind::Read), 0.3, FaultKind::Transient);
            (0..64)
                .map(|_| plan.decide(OpKind::Read).is_some())
                .collect()
        };
        assert_eq!(run(11), run(11), "same seed, same fault sequence");
        assert_ne!(run(11), run(12), "different seeds diverge");
        let hits = run(11).iter().filter(|&&b| b).count();
        assert!(hits > 0 && hits < 64, "p=0.3 over 64 draws: some, not all");
    }

    #[test]
    fn parse_builds_equivalent_plans() {
        let plan = FaultPlan::parse("seed=5, read=0.5, write@2=torn").unwrap();
        assert!(plan.is_armed());
        // The write schedule fires on the 2nd write.
        assert_eq!(plan.decide(OpKind::Write), None);
        assert_eq!(plan.decide(OpKind::Write), Some(FaultKind::Torn));
        // And an empty spec parses to a disarmed plan.
        assert!(!FaultPlan::parse("").unwrap().is_armed());
        assert!(!FaultPlan::parse("seed=9").unwrap().is_armed());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "read",              // no value
            "flush=0.5",         // unknown op
            "read=1.5",          // p out of range
            "read=x",            // not a number
            "read=0.1:gone",     // unknown kind
            "read@0=transient",  // 1-based
            "read@x=transient",  // N not integer
            "read=0.1:torn",     // torn is write-only
            "alloc=0.1:corrupt", // corrupt needs a payload
            "seed=abc",
        ] {
            assert!(
                FaultPlan::parse(bad).is_err(),
                "spec `{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn crash_rules_parse_and_count_down() {
        let plan = FaultPlan::parse("crash=sort.run_sealed@3").unwrap();
        assert!(plan.is_armed());
        assert_eq!(plan.crash_countdown("sort.run_sealed"), Some(3));
        // Hits below the threshold only count down (firing aborts the
        // process, which only the child-process chaos harness exercises).
        plan.crash_point("sort.run_sealed");
        plan.crash_point("other.point");
        assert_eq!(plan.crash_countdown("sort.run_sealed"), Some(2));
        assert_eq!(plan.crash_countdown("other.point"), None);
        plan.clear();
        assert!(!plan.is_armed());
        // Disarmed plans ignore crash points entirely.
        plan.crash_point("sort.run_sealed");
        assert_eq!(plan.crash_countdown("sort.run_sealed"), None);
    }

    #[test]
    fn crash_spec_rejects_malformed_forms() {
        for bad in ["crash=name", "crash=@1", "crash=x@0", "crash=x@y"] {
            assert!(
                FaultPlan::parse(bad).is_err(),
                "spec `{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn any_op_rules_match_everything() {
        let plan = FaultPlan::parse("any@3=transient").unwrap();
        let (disk, _) = rig(plan);
        let id = disk.alloc_page().unwrap(); // 1
        let p = Page::zeroed();
        disk.write_page(id, &p).unwrap(); // 2
        let mut q = Page::zeroed();
        assert!(disk.read_page(id, &mut q).is_err(), "3rd op of any kind");
        disk.read_page(id, &mut q).unwrap();
    }
}

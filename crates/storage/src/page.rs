//! Fixed-size pages with typed little-endian accessors and checksummed
//! headers.
//!
//! Every page reserves its first [`PAGE_HEADER`] bytes for the storage
//! layer:
//!
//! ```text
//! [ crc32: u32 | magic: u32 | payload ... ]
//! ```
//!
//! The CRC covers the payload (`bytes[PAGE_HEADER..]`) and is written by
//! [`Page::seal`] when the buffer pool persists a page; [`Page::verify_checksum`]
//! re-computes it when a page comes back from disk, turning torn and
//! corrupting writes into detected errors instead of silently wrong join
//! results. The magic word distinguishes sealed pages from fresh zeroed
//! ones (which have nothing to verify). Record and node layouts above the
//! pool must place their own data at offsets `>= PAGE_HEADER`.

/// Page size in bytes. 8 KiB, a common database page size.
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the start of every page for the storage-layer header
/// (checksum + magic).
pub const PAGE_HEADER: usize = 8;

/// Marks a page whose checksum field is valid ("HDSJ" little-endian).
const PAGE_MAGIC: u32 = 0x4A53_4448;

/// Identifier of a page within its disk (dense, starting at 0).
pub type PageId = u64;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Standard CRC-32 over `data` (the checksum `cksum`/zlib would produce).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One 8 KiB page. Heap-allocated so frames and disks move 8-byte pointers,
/// not 8 KiB bodies.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Page {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Raw bytes, mutably.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Writes the header: CRC-32 of the payload plus the magic word.
    /// Called by the buffer pool just before a page goes to disk.
    pub fn seal(&mut self) {
        let crc = crc32(&self.data[PAGE_HEADER..]);
        self.put_u32(0, crc);
        self.put_u32(4, PAGE_MAGIC);
    }

    /// Checks a page read back from disk. `Ok(())` when the checksum
    /// matches or the page was never sealed (no magic — e.g. a fresh
    /// zeroed page); `Err((stored, computed))` on a mismatch.
    pub fn verify_checksum(&self) -> std::result::Result<(), (u32, u32)> {
        if self.get_u32(4) != PAGE_MAGIC {
            return Ok(());
        }
        let stored = self.get_u32(0);
        let computed = crc32(&self.data[PAGE_HEADER..]);
        if stored == computed {
            Ok(())
        } else {
            Err((stored, computed))
        }
    }

    /// Copies `src` into the page at `off`. Panics when out of bounds.
    #[inline]
    pub fn put_slice(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrows `len` bytes at `off`.
    #[inline]
    pub fn get_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Writes a `u16` at `off` (little-endian).
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u16` at `off`.
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.data[off..off + 2]);
        u16::from_le_bytes(b)
    }

    /// Writes a `u32` at `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        u32::from_le_bytes(b)
    }

    /// Writes a `u64` at `off`.
    #[inline]
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    #[inline]
    pub fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes an `f64` at `off`.
    #[inline]
    pub fn put_f64(&mut self, off: usize, v: f64) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads an `f64` at `off`.
    #[inline]
    pub fn get_f64(&self, off: usize) -> f64 {
        f64::from_bits(self.get_u64(off))
    }
}

impl Clone for Page {
    fn clone(&self) -> Page {
        Page {
            data: self.data.clone(),
        }
    }
}

impl Default for Page {
    fn default() -> Page {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_accessors_round_trip() {
        let mut p = Page::zeroed();
        p.put_u16(0, 0xbeef);
        p.put_u32(2, 0xdead_beef);
        p.put_u64(6, u64::MAX - 7);
        p.put_f64(14, -0.125);
        assert_eq!(p.get_u16(0), 0xbeef);
        assert_eq!(p.get_u32(2), 0xdead_beef);
        assert_eq!(p.get_u64(6), u64::MAX - 7);
        assert_eq!(p.get_f64(14), -0.125);
    }

    #[test]
    fn slice_round_trip_at_page_end() {
        let mut p = Page::zeroed();
        let payload = [1u8, 2, 3, 4];
        p.put_slice(PAGE_SIZE - 4, &payload);
        assert_eq!(p.get_slice(PAGE_SIZE - 4, 4), payload);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        Page::zeroed().put_u32(PAGE_SIZE - 2, 1);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Page::zeroed();
        a.put_u32(0, 7);
        let b = a.clone();
        a.put_u32(0, 9);
        assert_eq!(b.get_u32(0), 7);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_page_verifies() {
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 0xfeed_face);
        p.seal();
        assert_eq!(p.verify_checksum(), Ok(()));
    }

    #[test]
    fn unsealed_page_is_not_checked() {
        // A fresh zeroed page carries no magic: nothing to verify.
        let mut p = Page::zeroed();
        assert_eq!(p.verify_checksum(), Ok(()));
        p.put_u64(PAGE_HEADER, 42); // still unsealed
        assert_eq!(p.verify_checksum(), Ok(()));
    }

    #[test]
    fn payload_bit_flip_is_detected() {
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 0xdead_beef);
        p.seal();
        p.bytes_mut()[PAGE_HEADER + 3] ^= 0x10;
        let err = p.verify_checksum().unwrap_err();
        assert_ne!(err.0, err.1, "stored and computed CRCs differ");
    }

    #[test]
    fn reseal_after_mutation_verifies_again() {
        let mut p = Page::zeroed();
        p.put_u64(PAGE_HEADER, 1);
        p.seal();
        p.put_u64(PAGE_HEADER, 2);
        assert!(p.verify_checksum().is_err(), "stale seal must not pass");
        p.seal();
        assert_eq!(p.verify_checksum(), Ok(()));
    }
}

//! Fixed-size pages with typed little-endian accessors.

/// Page size in bytes. 8 KiB, a common database page size.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within its disk (dense, starting at 0).
pub type PageId = u64;

/// One 8 KiB page. Heap-allocated so frames and disks move 8-byte pointers,
/// not 8 KiB bodies.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Page {
        Page {
            data: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("sized"),
        }
    }

    /// Raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Raw bytes, mutably.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Copies `src` into the page at `off`. Panics when out of bounds.
    #[inline]
    pub fn put_slice(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrows `len` bytes at `off`.
    #[inline]
    pub fn get_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Writes a `u16` at `off` (little-endian).
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u16` at `off`.
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().expect("2 bytes"))
    }

    /// Writes a `u32` at `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Writes a `u64` at `off`.
    #[inline]
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    #[inline]
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Writes an `f64` at `off`.
    #[inline]
    pub fn put_f64(&mut self, off: usize, v: f64) {
        self.put_slice(off, &v.to_le_bytes());
    }

    /// Reads an `f64` at `off`.
    #[inline]
    pub fn get_f64(&self, off: usize) -> f64 {
        f64::from_le_bytes(self.data[off..off + 8].try_into().expect("8 bytes"))
    }
}

impl Clone for Page {
    fn clone(&self) -> Page {
        Page {
            data: self.data.clone(),
        }
    }
}

impl Default for Page {
    fn default() -> Page {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_accessors_round_trip() {
        let mut p = Page::zeroed();
        p.put_u16(0, 0xbeef);
        p.put_u32(2, 0xdead_beef);
        p.put_u64(6, u64::MAX - 7);
        p.put_f64(14, -0.125);
        assert_eq!(p.get_u16(0), 0xbeef);
        assert_eq!(p.get_u32(2), 0xdead_beef);
        assert_eq!(p.get_u64(6), u64::MAX - 7);
        assert_eq!(p.get_f64(14), -0.125);
    }

    #[test]
    fn slice_round_trip_at_page_end() {
        let mut p = Page::zeroed();
        let payload = [1u8, 2, 3, 4];
        p.put_slice(PAGE_SIZE - 4, &payload);
        assert_eq!(p.get_slice(PAGE_SIZE - 4, 4), payload);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        Page::zeroed().put_u32(PAGE_SIZE - 2, 1);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Page::zeroed();
        a.put_u32(0, 7);
        let b = a.clone();
        a.put_u32(0, 9);
        assert_eq!(b.get_u32(0), 7);
    }
}

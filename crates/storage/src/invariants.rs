//! Runtime invariant layer — the `debug-invariants` feature.
//!
//! `hdsj-analyze`'s static rules (R3 `pin_pairing`, R4 `lock_order`) check
//! what is *lexically* visible inside one function. This module is the
//! runtime complement: with the `debug-invariants` cargo feature enabled,
//! the storage engine checks the same contracts dynamically, across
//! function and thread boundaries, on every operation:
//!
//! * **Lock order** — [`ordered`] maintains a per-thread stack of held
//!   lock ranks (the table in [`rank`], identical to R4's declared order)
//!   and asserts that every acquisition is of a rank ≥ every rank already
//!   held on the thread. Static R4 can't see a rank-2 disk lock taken
//!   three calls below a rank-0 pool lock; this can.
//! * **Structural invariants** — [`invariant`] guards the buffer-pool
//!   facts the chaos suite relies on: the freelist never aliases a
//!   resident frame, a sealed page's checksum verifies before it reaches
//!   the disk, and a pool is only dropped once every pin is released.
//!
//! With the feature **disabled** (the default) every entry point compiles
//! to a no-op and the tokens are zero-sized, so release builds pay
//! nothing. A violated invariant panics via `assert!` — the chaos and
//! property tests run with the feature on and a trip fails them loudly.
//!
//! [`checks`] counts executed checks so tests can assert the layer was
//! actually live (a silently disabled checker "passes" everything).

/// The global lock-rank order, mirroring `hdsj-analyze` rule R4: a thread
/// may only acquire locks of non-decreasing rank. "Pool before stats,
/// never the reverse."
pub mod rank {
    /// `BufferPool::inner` — the pool's frame map / freelist mutex.
    pub const POOL: u8 = 0;
    /// `FaultPlan`'s schedule mutex (`state`).
    pub const FAULT: u8 = 1;
    /// Disk-level locks: `MemDisk::pages`, `FileDisk::io_lock`,
    /// `FileDisk::num_pages`.
    pub const DISK: u8 = 2;
    /// Observability sinks and the counter registry (owned by `hdsj-obs`;
    /// the rank is reserved here so storage code holding any lock above
    /// can still emit trace events).
    pub const OBS: u8 = 3;
}

#[cfg(feature = "debug-invariants")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of invariant checks executed process-wide. Trips don't
    /// count — they panic; this exists so tests can prove the layer ran.
    static CHECKS: AtomicU64 = AtomicU64::new(0);

    /// Monotonic id source for [`OrderToken`]s, so out-of-order drops
    /// release the right stack entry.
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        /// `(rank, lock name, token id)` for every lock this thread holds.
        static HELD: RefCell<Vec<(u8, &'static str, u64)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Proof of a rank-checked acquisition; dropping it marks the lock
    /// released. Keep it alive exactly as long as the guard it fronts.
    #[must_use = "dropping the token immediately marks the lock released"]
    pub struct OrderToken {
        id: u64,
    }

    /// Records that the current thread is about to acquire the lock
    /// `name` of rank `rank`, asserting the declared global order.
    pub fn ordered(rank: u8, name: &'static str) -> OrderToken {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top_rank, top_name, _)) = h.iter().max_by_key(|&&(r, _, _)| r) {
                assert!(
                    rank >= top_rank,
                    "lock-order violation: acquiring `{name}` (rank {rank}) while \
                     holding `{top_name}` (rank {top_rank}); declared order is \
                     pool < fault < disk < obs"
                );
            }
            h.push((rank, name, id));
        });
        OrderToken { id }
    }

    impl Drop for OrderToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(pos) = h.iter().rposition(|&(_, _, id)| id == self.id) {
                    h.remove(pos);
                }
            });
        }
    }

    /// Asserts a structural invariant; `msg` is only evaluated on a trip.
    pub fn invariant(cond: bool, msg: impl FnOnce() -> String) {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        assert!(cond, "storage invariant violated: {}", msg());
    }

    /// Total invariant checks executed so far.
    pub fn checks() -> u64 {
        CHECKS.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "debug-invariants"))]
mod imp {
    /// Zero-sized stand-in; the release build carries no rank state.
    pub struct OrderToken;

    #[inline(always)]
    pub fn ordered(_rank: u8, _name: &'static str) -> OrderToken {
        OrderToken
    }

    #[inline(always)]
    pub fn invariant(_cond: bool, _msg: impl FnOnce() -> String) {}

    #[inline(always)]
    pub fn checks() -> u64 {
        0
    }
}

pub use imp::{checks, invariant, ordered, OrderToken};

#[cfg(all(test, feature = "debug-invariants"))]
mod tests {
    use super::*;

    #[test]
    fn ascending_ranks_are_accepted() {
        let before = checks();
        let _p = ordered(rank::POOL, "inner");
        let _f = ordered(rank::FAULT, "state");
        let _d = ordered(rank::DISK, "pages");
        assert!(checks() >= before + 3);
    }

    #[test]
    fn equal_ranks_are_accepted() {
        let _a = ordered(rank::DISK, "io_lock");
        let _b = ordered(rank::DISK, "num_pages");
    }

    #[test]
    fn release_resets_the_ceiling() {
        {
            let _d = ordered(rank::DISK, "pages");
        }
        // Dropping the rank-2 token makes a rank-0 acquisition legal again.
        let _p = ordered(rank::POOL, "inner");
    }

    #[test]
    fn out_of_order_token_drop_releases_the_right_entry() {
        let p = ordered(rank::POOL, "inner");
        let d = ordered(rank::DISK, "pages");
        drop(p); // release the *lower* rank first
        drop(d);
        let _again = ordered(rank::POOL, "inner");
    }

    #[test]
    fn descending_ranks_trip() {
        let result = std::panic::catch_unwind(|| {
            let _d = ordered(rank::OBS, "counters");
            let _p = ordered(rank::POOL, "inner");
        });
        assert!(result.is_err(), "reverse order must assert");
        // The panic unwound past the tokens' drops; the thread-local
        // stack must be clean again for the other tests on this thread.
        let _ok = ordered(rank::POOL, "inner");
    }

    #[test]
    fn invariant_trips_with_message() {
        let result = std::panic::catch_unwind(|| {
            invariant(false, || "freelist aliases frame 3".to_string());
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("freelist aliases frame 3"), "{msg}");
    }
}

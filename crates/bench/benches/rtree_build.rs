//! R-tree construction benchmarks: the three build strategies across
//! dimensionalities (the build half of the E12 ablation).
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsj_rtree::{BuildStrategy, RTree};
use hdsj_storage::StorageEngine;

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    for d in [4usize, 16] {
        let ds = hdsj_data::uniform(d, 5_000, d as u64).unwrap();
        for strategy in [
            BuildStrategy::HilbertPack,
            BuildStrategy::Str,
            BuildStrategy::DynamicInsert,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), d),
                &ds,
                |b, ds| {
                    b.iter(|| {
                        let eng = StorageEngine::in_memory(4096);
                        RTree::build(&eng, ds, strategy, 0.7).unwrap().num_pages()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);

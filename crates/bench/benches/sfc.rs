//! Space-filling-curve micro-benchmarks: Hilbert vs Z-order encode cost and
//! decode cost across dimensionalities (feeds the E12 ablation analysis).
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsj_sfc::{hilbert, zorder, Curve};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfc_encode");
    for d in [2usize, 8, 32, 64] {
        let coords: Vec<u32> = (0..d as u32).map(|i| (i * 2654435761) % 65536).collect();
        for curve in [Curve::Hilbert, Curve::ZOrder] {
            group.bench_with_input(BenchmarkId::new(curve.label(), d), &coords, |b, coords| {
                b.iter(|| curve.key(coords, 16))
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfc_decode");
    for d in [2usize, 8, 32] {
        let coords: Vec<u32> = (0..d as u32).map(|i| (i * 40503) % 65536).collect();
        let hk = hilbert::index(&coords, 16);
        let zk = zorder::index(&coords, 16);
        group.bench_with_input(BenchmarkId::new("hilbert", d), &hk, |b, k| {
            b.iter(|| hilbert::coords(k, d, 16))
        });
        group.bench_with_input(BenchmarkId::new("zorder", d), &zk, |b, k| {
            b.iter(|| zorder::coords(k, d, 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);

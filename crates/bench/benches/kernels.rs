//! Distance-kernel micro-benchmarks: vectorized kernels vs the scalar
//! reference loop, across dimensionalities, for both full distances and
//! ε-threshold `within` checks (where block-level early exit applies).
//!
//! The `simd` rows go through `hdsj_core::simd` at the host's best
//! dispatch tier (override with `HDSJ_SIMD`); `simd_block` is the
//! across-candidate SoA filter — the throughput path, with independent
//! accumulator chains per candidate.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsj_core::soa::SoABlock;
use hdsj_core::{kernels, simd, Dataset, Metric};

/// Deterministic pseudo-random point, same flavor as the kernel unit tests.
fn pseudo_point(dims: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..dims)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn scalar_l2_distance(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc.sqrt()
}

fn scalar_l2_within(x: &[f64], y: &[f64], eps: f64) -> bool {
    scalar_l2_distance(x, y) <= eps
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_l2_distance");
    for d in [8usize, 16, 64, 256] {
        let x = pseudo_point(d, 1);
        let y = pseudo_point(d, 2);
        group.bench_with_input(BenchmarkId::new("scalar", d), &d, |b, _| {
            b.iter(|| scalar_l2_distance(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", d), &d, |b, _| {
            b.iter(|| kernels::l2_distance(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("simd", d), &d, |b, _| {
            b.iter(|| simd::l2_distance(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

fn bench_within(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_l2_within");
    for d in [8usize, 16, 64, 256] {
        let x = pseudo_point(d, 1);
        // ε at roughly the median pair distance so both accept and reject
        // paths (and the early exit) are exercised.
        let points: Vec<Vec<f64>> = (0..64).map(|s| pseudo_point(d, 100 + s)).collect();
        let mut dists: Vec<f64> = points.iter().map(|p| scalar_l2_distance(&x, p)).collect();
        dists.sort_unstable_by(f64::total_cmp);
        let eps = dists[dists.len() / 2];
        group.bench_with_input(BenchmarkId::new("scalar", d), &points, |b, pts| {
            b.iter(|| {
                pts.iter()
                    .filter(|p| scalar_l2_within(black_box(&x), black_box(p), eps))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("kernel", d), &points, |b, pts| {
            b.iter(|| {
                pts.iter()
                    .filter(|p| kernels::l2_within(black_box(&x), black_box(p), eps))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("metric_dispatch", d), &points, |b, pts| {
            b.iter(|| {
                pts.iter()
                    .filter(|p| Metric::L2.within(black_box(&x), black_box(p), eps))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("simd", d), &points, |b, pts| {
            b.iter(|| {
                pts.iter()
                    .filter(|p| simd::l2_within(black_box(&x), black_box(p), eps))
                    .count()
            })
        });
        let ds = Dataset::from_rows(&points).unwrap();
        let block = SoABlock::from_range(&ds, 0..points.len() as u32);
        group.bench_with_input(BenchmarkId::new("simd_block", d), &block, |b, blk| {
            let mut out = Vec::with_capacity(blk.len());
            b.iter(|| {
                out.clear();
                simd::l2_within_block(
                    black_box(&x),
                    black_box(blk),
                    0..blk.len(),
                    eps,
                    &mut out,
                );
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance, bench_within);
criterion_main!(benches);

//! Storage-engine micro-benchmarks: buffer-pool hit path, miss/evict path,
//! record-file append/scan, and the external sort.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsj_storage::sort::{external_sort, SortConfig};
use hdsj_storage::{RecordFile, StorageEngine};

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    // Hit path: single resident page fetched repeatedly.
    let eng = StorageEngine::in_memory(8);
    let pid = eng.alloc().unwrap().id();
    group.bench_function("fetch_hit", |b| b.iter(|| eng.fetch(pid).unwrap().id()));
    // Miss path: more pages than frames, round-robin.
    let eng2 = StorageEngine::in_memory(4);
    let pids: Vec<_> = (0..16).map(|_| eng2.alloc().unwrap().id()).collect();
    let mut i = 0;
    group.bench_function("fetch_miss_evict", |b| {
        b.iter(|| {
            i = (i + 1) % pids.len();
            eng2.fetch(pids[i]).unwrap().id()
        })
    });
    group.finish();
}

fn bench_record_file(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_file");
    group.bench_function("append_64B", |b| {
        let eng = StorageEngine::in_memory(64);
        let mut f = RecordFile::create(&eng, 64).unwrap();
        let rec = [7u8; 64];
        b.iter(|| f.push(&rec).unwrap())
    });
    let eng = StorageEngine::in_memory(64);
    let mut f = RecordFile::create(&eng, 64).unwrap();
    for i in 0..10_000u32 {
        let mut rec = [0u8; 64];
        rec[..4].copy_from_slice(&i.to_le_bytes());
        f.push(&rec).unwrap();
    }
    f.release_tail();
    group.bench_function("scan_10k", |b| {
        b.iter(|| {
            let mut cur = f.cursor();
            let mut n = 0u64;
            while cur.next().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_external_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for n in [10_000u32, 50_000] {
        group.bench_with_input(BenchmarkId::new("sort", n), &n, |b, &n| {
            b.iter(|| {
                let eng = StorageEngine::in_memory(256);
                let mut f = RecordFile::create(&eng, 16).unwrap();
                for i in 0..n {
                    let key = i.wrapping_mul(2654435761);
                    let mut rec = [0u8; 16];
                    rec[..4].copy_from_slice(&key.to_be_bytes());
                    rec[4..8].copy_from_slice(&i.to_le_bytes());
                    f.push(&rec).unwrap();
                }
                f.release_tail();
                external_sort(
                    &eng,
                    &f,
                    4,
                    SortConfig {
                        mem_records: 8192,
                        fanin: 16,
                        ..SortConfig::default()
                    },
                )
                .unwrap()
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool, bench_record_file, bench_external_sort);
criterion_main!(benches);

//! Criterion micro-benchmarks backing experiments E1–E3: one group per
//! swept parameter, one bench per algorithm. Workloads are deliberately
//! small (Criterion repeats them many times); the experiment binaries run
//! the full-size sweeps.
// Panicking is idiomatic in test code; see clippy.toml / analyzer policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsj_bench::Algo;
use hdsj_core::{CountSink, JoinSpec, Metric};
use hdsj_data::analytic::eps_for_expected_pairs;

fn bench_dimensionality(c: &mut Criterion) {
    let n = 2_000;
    let mut group = c.benchmark_group("self_join_vs_dim");
    group.sample_size(10);
    for d in [4usize, 16, 64] {
        let eps = eps_for_expected_pairs(Metric::L2, d, n, n as f64).min(0.95);
        let ds = hdsj_data::uniform(d, n, d as u64).unwrap();
        let spec = JoinSpec::new(eps, Metric::L2);
        for algo in Algo::all() {
            if algo == Algo::Grid && d > 10 {
                continue; // refuses: 3^d neighbourhood
            }
            group.bench_with_input(
                BenchmarkId::new(algo.name(), d),
                &(&ds, &spec),
                |b, (ds, spec)| {
                    b.iter(|| {
                        let mut a = algo.make();
                        let mut sink = CountSink::default();
                        a.self_join(ds, spec, &mut sink).expect("join");
                        sink.count
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let n = 2_000;
    let d = 8;
    let ds = hdsj_data::uniform(d, n, 42).unwrap();
    let mut group = c.benchmark_group("self_join_vs_eps");
    group.sample_size(10);
    for eps in [0.1f64, 0.3, 0.5] {
        let spec = JoinSpec::new(eps, Metric::L2);
        for algo in Algo::all() {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{eps}")),
                &(&ds, &spec),
                |b, (ds, spec)| {
                    b.iter(|| {
                        let mut a = algo.make();
                        let mut sink = CountSink::default();
                        a.self_join(ds, spec, &mut sink).expect("join");
                        sink.count
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_scale(c: &mut Criterion) {
    let d = 8;
    let spec = JoinSpec::new(0.2, Metric::L2);
    let mut group = c.benchmark_group("self_join_vs_n");
    group.sample_size(10);
    for n in [1_000usize, 2_000, 4_000] {
        let ds = hdsj_data::uniform(d, n, 7).unwrap();
        for algo in Algo::all() {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &(&ds, &spec),
                |b, (ds, spec)| {
                    b.iter(|| {
                        let mut a = algo.make();
                        let mut sink = CountSink::default();
                        a.self_join(ds, spec, &mut sink).expect("join");
                        sink.count
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dimensionality, bench_epsilon, bench_scale);
criterion_main!(benches);

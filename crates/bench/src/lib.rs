//! # hdsj-bench — the experiment harness
//!
//! One binary per reproduced table/figure (see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results):
//!
//! | target | artefact |
//! |--------|----------|
//! | `fig_time_vs_dim`     | E1  — response time vs dimensionality |
//! | `fig_time_vs_eps`     | E2  — response time vs ε |
//! | `fig_time_vs_n`       | E3  — response time vs dataset size |
//! | `fig_io_vs_n`         | E4  — page I/O vs dataset size |
//! | `tbl_memory_vs_dim`   | E5  — structure memory vs dimensionality |
//! | `fig_skew`            | E6  — clustered / skewed data |
//! | `fig_real_data`       | E7  — time-series Fourier features |
//! | `tbl_msj_phases`      | E8  — MSJ phase breakdown |
//! | `tbl_level_occupancy` | E9  — MSJ level-file occupancy |
//! | `tbl_filter_quality`  | E10 — candidates vs results |
//! | `fig_buffer_sweep`    | E11 — I/O vs buffer-pool size |
//! | `tbl_ablation`        | E12 — curve & build-strategy ablations |
//!
//! Each binary prints an aligned table and writes
//! `target/experiments/<name>.csv`. Set `HDSJ_QUICK=1` to shrink the
//! workloads (used by the smoke tests), `HDSJ_SCALE=<f64>` to scale them.
#![forbid(unsafe_code)]

use hdsj_bruteforce::BruteForce;
use hdsj_core::{CountSink, Dataset, JoinSpec, JoinStats, Result, SimilarityJoin};
use hdsj_ekdb::EkdbJoin;
use hdsj_grid::GridJoin;
use hdsj_msj::Msj;
use hdsj_rtree::RsjJoin;
use hdsj_sortmerge::SortMergeJoin;
use std::io::Write;
use std::time::Instant;

/// The algorithm roster of the evaluation, in the order the tables list
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Block nested loops.
    Bf,
    /// 1-D projection sort-merge.
    Sm1d,
    /// ε-grid hash join.
    Grid,
    /// ε-KDB tree join.
    Ekdb,
    /// R-tree spatial join.
    Rsj,
    /// Multidimensional spatial join (the contribution).
    Msj,
}

impl Algo {
    /// All algorithms, baseline first, contribution last.
    pub fn all() -> [Algo; 6] {
        [
            Algo::Bf,
            Algo::Sm1d,
            Algo::Grid,
            Algo::Ekdb,
            Algo::Rsj,
            Algo::Msj,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Bf => "BF",
            Algo::Sm1d => "SM1D",
            Algo::Grid => "GRID",
            Algo::Ekdb => "EKDB",
            Algo::Rsj => "RSJ",
            Algo::Msj => "MSJ",
        }
    }

    /// A fresh instance with default configuration.
    pub fn make(&self) -> Box<dyn SimilarityJoin> {
        match self {
            Algo::Bf => Box::new(BruteForce::default()),
            Algo::Sm1d => Box::new(SortMergeJoin::default()),
            Algo::Grid => Box::new(GridJoin::default()),
            Algo::Ekdb => Box::new(EkdbJoin::default()),
            Algo::Rsj => Box::new(RsjJoin::default()),
            Algo::Msj => Box::new(Msj::default()),
        }
    }
}

/// One measured join run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock of the whole call (build + join phases).
    pub elapsed_ms: f64,
    /// The join's own statistics.
    pub stats: JoinStats,
}

/// Runs a self-join with a counting sink and wall-clock measurement.
/// `Err` (e.g. GRID above its dimensionality cap) is returned as-is so the
/// caller can print `n/a`, which is how the paper's plots show infeasible
/// configurations.
pub fn measure_self_join(
    algo: &mut dyn SimilarityJoin,
    ds: &Dataset,
    spec: &JoinSpec,
) -> Result<Measurement> {
    let mut sink = CountSink::default();
    let start = Instant::now();
    let stats = algo.self_join(ds, spec, &mut sink)?;
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    debug_assert_eq!(sink.count, stats.results);
    Ok(Measurement { elapsed_ms, stats })
}

/// Scale factor for workload sizes: `HDSJ_QUICK=1` → 0.1, else
/// `HDSJ_SCALE` (default 1.0).
pub fn scale() -> f64 {
    if std::env::var("HDSJ_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 0.1;
    }
    std::env::var("HDSJ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`], with a floor so experiments stay meaningful.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(200)
}

/// An experiment output table: aligned stdout rendering plus CSV export.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table named after its experiment (used for the CSV filename).
    pub fn new(name: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// One JSON object per row: `{"experiment": <name>, <header>: <cell>, ...}`.
    /// Cells that parse as plain numbers are emitted as numbers, everything
    /// else (units like `12.3ms`, `n/a`) as strings, so downstream tools get
    /// typed values without the harness committing to a column schema.
    pub fn json_rows(&self) -> Vec<String> {
        use hdsj_core::obs::json::{encode_f64, encode_str};
        let cell_value = |cell: &str| -> String {
            if let Ok(v) = cell.parse::<u64>() {
                return v.to_string();
            }
            match cell.parse::<f64>() {
                Ok(v) if v.is_finite() => encode_f64(v),
                _ => encode_str(cell),
            }
        };
        self.rows
            .iter()
            .map(|row| {
                let mut out = format!("{{\"experiment\":{}", encode_str(&self.name));
                for (header, cell) in self.headers.iter().zip(row) {
                    out.push(',');
                    out.push_str(&encode_str(header));
                    out.push(':');
                    out.push_str(&cell_value(cell));
                }
                out.push('}');
                out
            })
            .collect()
    }

    /// Prints the table and writes `target/experiments/<name>.csv` plus
    /// `target/experiments/<name>.jsonl` (one structured JSON row per
    /// experiment point).
    pub fn emit(&self) -> std::io::Result<()> {
        println!("\n== {} ==", self.name);
        print!("{}", self.render());
        let dir = std::path::Path::new("target/experiments");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        let json_path = dir.join(format!("{}.jsonl", self.name));
        let mut j = std::io::BufWriter::new(std::fs::File::create(&json_path)?);
        for line in self.json_rows() {
            writeln!(j, "{line}")?;
        }
        j.flush()?;
        println!("(csv written to {})", path.display());
        println!("(jsonl written to {})", json_path.display());
        Ok(())
    }
}

/// Estimates the ε at which a self-join selects roughly `frac` of all
/// pairs, by sampling `samples` random pairs and taking the `frac`-quantile
/// of their distances. Used where no closed form exists (clustered and
/// real-surrogate workloads).
pub fn eps_for_sample_quantile(
    ds: &Dataset,
    metric: hdsj_core::Metric,
    frac: f64,
    samples: usize,
) -> f64 {
    let n = ds.len();
    if n < 2 {
        return 0.1;
    }
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut dists: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let i = (next() % n as u64) as u32;
        let mut j = (next() % n as u64) as u32;
        if i == j {
            j = (j + 1) % n as u32;
        }
        dists.push(metric.distance(ds.point(i), ds.point(j)));
    }
    dists.sort_unstable_by(f64::total_cmp);
    let idx = ((dists.len() as f64 * frac) as usize).min(dists.len() - 1);
    dists[idx].max(1e-6)
}

/// Formats a millisecond value compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

/// Formats a byte count compactly.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsj_core::Metric;

    #[test]
    fn roster_runs_and_agrees() {
        let ds = hdsj_data::uniform(4, 300, 1).unwrap();
        let spec = JoinSpec::new(0.2, Metric::L2);
        let mut counts = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            let m = measure_self_join(a.as_mut(), &ds, &spec).unwrap();
            counts.push(m.stats.results);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn grid_reports_unsupported_high_d() {
        let ds = hdsj_data::uniform(32, 50, 1).unwrap();
        let spec = JoinSpec::l2(0.5);
        let mut g = Algo::Grid.make();
        assert!(measure_self_join(g.as_mut(), &ds, &spec).is_err());
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new("unit_test_table", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn json_rows_type_cells_and_parse() {
        use hdsj_core::obs::json;
        let mut t = Table::new("e2e", &["algo", "n", "time", "precision"]);
        t.row(vec![
            "MSJ".into(),
            "1000".into(),
            "12.3ms".into(),
            "0.5".into(),
        ]);
        t.row(vec!["GRID".into(), "1000".into(), "n/a".into(), "1".into()]);
        let rows = t.json_rows();
        assert_eq!(rows.len(), 2);
        let first = json::parse(&rows[0]).unwrap();
        assert_eq!(
            first.get("experiment").and_then(|v| v.as_str()),
            Some("e2e")
        );
        assert_eq!(first.get("algo").and_then(|v| v.as_str()), Some("MSJ"));
        assert_eq!(first.get("n").and_then(|v| v.as_u64()), Some(1000));
        assert_eq!(first.get("time").and_then(|v| v.as_str()), Some("12.3ms"));
        assert_eq!(first.get("precision").and_then(|v| v.as_f64()), Some(0.5));
        let second = json::parse(&rows[1]).unwrap();
        assert_eq!(second.get("time").and_then(|v| v.as_str()), Some("n/a"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(12.34), "12.3ms");
        assert_eq!(fmt_ms(1234.5), "1.23s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn scaled_applies_floor() {
        assert!(scaled(100) >= 200 || scale() >= 1.0);
    }
}

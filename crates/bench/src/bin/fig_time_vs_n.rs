//! E3 — response time vs dataset size (uniform data, d = 8, fixed ε).
//!
//! BF grows quadratically; the filter algorithms grow near-linearly until
//! the output itself dominates.

use hdsj_bench::{fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let eps = 0.2;
    let spec = JoinSpec::new(eps, Metric::L2);
    let mut table = Table::new(
        "E3_time_vs_n",
        &["n", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ"],
    );
    for base in [5_000usize, 10_000, 20_000, 40_000] {
        let n = scaled(base);
        let ds = hdsj_data::uniform(d, n, 7)?;
        let mut cells = vec![n.to_string()];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

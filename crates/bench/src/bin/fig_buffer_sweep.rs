//! E11 — sensitivity to buffer-pool size: page I/O of RSJ and MSJ as the
//! pool grows (d = 8, fixed N and ε).
//!
//! RSJ's random traversal thrashes small pools; MSJ's sequential phases are
//! nearly pool-size-independent.

use hdsj_bench::{measure_self_join, scaled, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_msj::Msj;
use hdsj_rtree::RsjJoin;
use hdsj_storage::StorageEngine;

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let n = scaled(40_000);
    let ds = hdsj_data::uniform(d, n, 23)?;
    let spec = JoinSpec::new(0.15, Metric::L2);
    let mut table = Table::new("E11_buffer_sweep", &["pool_pages", "RSJ_io", "MSJ_io"]);
    for pool in [8usize, 32, 128, 512, 2048] {
        let mut rsj = RsjJoin::with_engine(StorageEngine::in_memory(pool));
        let rsj_m = measure_self_join(&mut rsj, &ds, &spec)?;
        let mut msj = Msj::with_engine(StorageEngine::in_memory(pool));
        let msj_m = measure_self_join(&mut msj, &ds, &spec)?;
        table.row(vec![
            pool.to_string(),
            rsj_m.stats.io.total().to_string(),
            msj_m.stats.io.total().to_string(),
        ]);
    }
    table.emit()?;
    Ok(())
}

//! E14 — the quadratic disk baseline: page I/O of disk block nested loops
//! vs MSJ on the same storage engine, as the buffer block shrinks.
//!
//! BNL reads pages(inner) once per outer block — the O(P²/B) disk cost the
//! filter algorithms exist to avoid; MSJ's sort-based pipeline reads each
//! page a small constant number of times.

use hdsj_bench::{measure_self_join, scaled, Table};
use hdsj_core::{CountSink, JoinKind, JoinSpec, Metric};
use hdsj_msj::Msj;
use hdsj_storage::{disk_block_nested_loops, PointFile, StorageEngine};

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let n = scaled(20_000);
    let ds = hdsj_data::uniform(d, n, 41)?;
    let spec = JoinSpec::new(0.1, Metric::L2);

    let mut table = Table::new(
        "E14_disk_baseline",
        &[
            "variant",
            "block_points",
            "io_reads",
            "io_writes",
            "results",
        ],
    );

    for block in [500usize, 2_000, 8_000] {
        let engine = StorageEngine::in_memory(16);
        let pf = PointFile::from_dataset(&engine, &ds)?;
        engine.reset_counters();
        let mut sink = CountSink::default();
        let stats =
            disk_block_nested_loops(&pf, &pf, JoinKind::SelfJoin, &spec, block, &mut sink)?;
        table.row(vec![
            "BNL".into(),
            block.to_string(),
            stats.io.reads.to_string(),
            stats.io.writes.to_string(),
            stats.results.to_string(),
        ]);
    }

    let engine = StorageEngine::in_memory(16);
    let mut msj = Msj::with_engine(engine);
    let m = measure_self_join(&mut msj, &ds, &spec)?;
    table.row(vec![
        "MSJ".into(),
        "-".into(),
        m.stats.io.reads.to_string(),
        m.stats.io.writes.to_string(),
        m.stats.results.to_string(),
    ]);

    table.emit()?;
    Ok(())
}

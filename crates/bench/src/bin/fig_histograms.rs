//! E13 — color-histogram features (the second real-data surrogate, after
//! the ε-KDB paper's image workloads): sparse simplex-constrained vectors
//! at d = 16/32/64.
//!
//! Correlated mass in few bins means real near-neighbours exist even at
//! d = 64 with small ε — unlike uniform data — and the structures behave
//! very differently here than in E1.

use hdsj_bench::{eps_for_sample_quantile, fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_data::{color_histograms, HistogramSpec};

fn main() -> hdsj_core::Result<()> {
    let n = scaled(8_000);
    let mut table = Table::new(
        "E13_color_histograms",
        &[
            "d", "eps", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ",
        ],
    );
    for bins in [16usize, 32, 64] {
        let ds = color_histograms(bins, n, HistogramSpec::default(), 2026)?;
        let frac = 4.0 * n as f64 / (n as f64 * (n as f64 - 1.0) / 2.0);
        let eps = eps_for_sample_quantile(&ds, Metric::L2, frac, 20_000);
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![bins.to_string(), format!("{eps:.4}")];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

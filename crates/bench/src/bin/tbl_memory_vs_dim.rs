//! E5 — structure-resident memory vs dimensionality.
//!
//! The ε-KDB directory and the R-tree pages grow with d (and with 1/ε),
//! while MSJ's sweep memory is the stack of open cells — the paper's memory
//! argument, measured.

use hdsj_bench::{fmt_bytes, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_data::analytic::eps_for_expected_pairs;

fn main() -> hdsj_core::Result<()> {
    let n = scaled(10_000);
    let mut table = Table::new(
        "E5_memory_vs_dim",
        &["d", "eps", "GRID", "EKDB", "RSJ", "MSJ"],
    );
    for d in [2usize, 4, 8, 16, 32] {
        let eps = eps_for_expected_pairs(Metric::L2, d, n, n as f64 * 2.0).min(0.95);
        let ds = hdsj_data::uniform(d, n, d as u64 + 5)?;
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![d.to_string(), format!("{eps:.3}")];
        for algo in [Algo::Grid, Algo::Ekdb, Algo::Rsj, Algo::Msj] {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => cells.push(fmt_bytes(m.stats.structure_bytes)),
                Err(_) => cells.push("n/a".into()),
            }
        }
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

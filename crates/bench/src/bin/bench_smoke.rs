//! `bench_smoke` — the pinned thread-scaling workload for PR 4.
//!
//! Runs the two parallelized algorithms (MSJ, BF) on a fixed uniform
//! workload at `--threads {1, max}` plus a scalar-vs-kernel L2 `within`
//! micro-benchmark, and writes `BENCH_0004.json` with the median
//! wall-times, pairs/sec, and speedups. CI runs it with `HDSJ_QUICK=1`
//! (n=5 000); the full workload is uniform d=16 n=50 000.
//!
//! ε is *derived*, not fixed: the 10⁻⁴ pair quantile of sampled pair
//! distances. The original fixed ε=0.1 selected zero pairs at d=16
//! (uniform pair distances concentrate near √(d/6) ≈ 1.63), so the
//! "join" timings measured pure filtering with an empty refinement
//! phase. Every timed join is now required to produce pairs — a
//! zero-pair workload fails the run rather than silently recording a
//! vacuous number.
//!
//! The SIMD dispatch sweep (`BENCH_0006.json`) times the d=64 L2
//! `within` kernel at every tier the host supports — the single-chain
//! scalar reference, the 4-lane scalar kernel, and the dispatched
//! pair/block kernels per tier — pinning exact hit-count equality across
//! tiers (the bit-exactness contract) and recording speedups against the
//! 4-lane kernel along with the honest host dispatch level.
//!
//! It also runs one traced MSJ pass (memory sink) and writes
//! `BENCH_0005.json` with per-phase latency percentiles (p50/p90/p99/max
//! for every `*.phase.*_ns` histogram plus the exec chunk/queue-wait
//! distributions) and `BENCH_0005.prom`, the same metrics in Prometheus
//! text exposition format. The JSON report also carries a resumed-join
//! timing row: a checkpointed MSJ run is halted at its first sealed sort
//! level and resumed from the manifest, so the report shows what
//! `hdsj join --resume` pays after a crash relative to a full run.
//!
//! The report records `host_threads` (what `available_parallelism`
//! returned) so speedups are read against the hardware that produced
//! them: on a single-core host the parallel path cannot beat serial and
//! the file says so honestly.
#![forbid(unsafe_code)]

use hdsj_bench::measure_self_join;
use hdsj_bruteforce::BruteForce;
use hdsj_core::obs::json::encode_f64;
use hdsj_core::{kernels, Error, JoinSpec, Metric, Result, SimilarityJoin};
use hdsj_msj::Msj;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

const REPEATS: usize = 3;

fn quick() -> bool {
    std::env::var("HDSJ_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// One (algorithm, thread-count) measurement: median wall-time over
/// `REPEATS` runs plus the result count of the last run.
struct JoinRow {
    algo: &'static str,
    threads: usize,
    median_ms: f64,
    pairs: u64,
    pairs_per_sec: f64,
}

fn bench_join(
    name: &'static str,
    make: impl Fn() -> Box<dyn SimilarityJoin>,
    threads: usize,
    ds: &hdsj_core::Dataset,
    spec: &JoinSpec,
) -> Result<JoinRow> {
    let mut times = Vec::with_capacity(REPEATS);
    let mut pairs = 0;
    for _ in 0..REPEATS {
        let mut algo = make();
        algo.set_threads(threads);
        let m = measure_self_join(algo.as_mut(), ds, spec)?;
        times.push(m.elapsed_ms);
        pairs = m.stats.results;
    }
    let median_ms = median(times);
    Ok(JoinRow {
        algo: name,
        threads,
        median_ms,
        pairs,
        pairs_per_sec: pairs as f64 / (median_ms / 1e3),
    })
}

/// Scalar reference for the kernel micro-benchmark: the pre-kernel loop —
/// one running sum with a per-element early-exit test against ε². The
/// kernel reassociates the sum into four lanes, so pairs landing within an
/// ulp of the ε boundary may flip; hit counts must agree up to that.
fn scalar_l2_within(x: &[f64], y: &[f64], eps: f64) -> bool {
    let budget = eps * eps;
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
        if acc > budget {
            return false;
        }
    }
    true
}

/// A pseudo-shuffled candidate order, so the probe loop touches points the
/// way `within_batch` does in refinement (scattered ids, not a contiguous
/// sweep the compiler can fuse across pairs).
fn shuffled_ids(n: u32) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..n).collect();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    for i in (1..ids.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ids.swap(i, (state % (i as u64 + 1)) as usize);
    }
    ids
}

/// Runs every probe of `ds` against the shuffled candidate list through
/// `within`, returning (median wall ms, hit count). The hit count keeps
/// the loop live and cross-checks the two variants against each other.
fn bench_within(
    ds: &hdsj_core::Dataset,
    eps: f64,
    within: impl Fn(&[f64], &[f64], f64) -> bool,
) -> (f64, u64) {
    let candidates = shuffled_ids(ds.len() as u32);
    let mut times = Vec::with_capacity(REPEATS);
    let mut hits = 0u64;
    for _ in 0..REPEATS {
        // Re-read ε through black_box each repeat so the (pure) sweep
        // cannot be hoisted out of the repeats loop and reused.
        let eps = black_box(eps);
        hits = 0;
        let start = Instant::now();
        for (i, x) in ds.iter() {
            for &j in &candidates {
                if j != i && within(black_box(x), black_box(ds.point(j)), eps) {
                    hits += 1;
                }
            }
        }
        // Force each repeat's result to be materialized: without this the
        // optimizer sinks the (pure) sweep and only the last repeat runs.
        hits = black_box(hits);
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(times), hits)
}

fn main() -> Result<()> {
    let quick = quick();
    let n = if quick { 5_000 } else { 50_000 };
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let max_threads = hdsj_exec::resolve_threads(0);

    let ds = hdsj_data::uniform(16, n, 42)?;
    // ε at the 10⁻⁴ pair quantile: a per-dimension threshold derived from
    // the data, so the timed joins refine real candidate sets instead of
    // the zero-pair workload a fixed ε=0.1 selects at d=16.
    let eps = hdsj_bench::eps_for_sample_quantile(&ds, Metric::L2, 1e-4, 50_000);
    let spec = JoinSpec::new(eps, Metric::L2);
    println!(
        "bench_smoke: uniform d=16 n={n} eps={eps:.4} L2 (quick={quick}, host_threads={host_threads})"
    );

    let mut thread_counts = vec![1];
    if max_threads > 1 {
        thread_counts.push(max_threads);
    }
    let mut rows: Vec<JoinRow> = Vec::new();
    for &t in &thread_counts {
        rows.push(bench_join("msj", || Box::<Msj>::default(), t, &ds, &spec)?);
        rows.push(bench_join(
            "bf",
            || Box::<BruteForce>::default(),
            t,
            &ds,
            &spec,
        )?);
        for row in rows.iter().rev().take(2) {
            println!(
                "  {:<4} threads={:<2} median={:.1}ms pairs={} ({:.0} pairs/s)",
                row.algo, row.threads, row.median_ms, row.pairs, row.pairs_per_sec
            );
        }
    }
    // A zero-pair join times filtering with an empty refinement phase —
    // a vacuous workload that must fail the run, not be recorded.
    for row in &rows {
        if row.pairs == 0 {
            return Err(Error::Internal(format!(
                "{} at {} threads timed a zero-pair workload (eps={eps}); \
                 the benchmark is vacuous",
                row.algo, row.threads
            )));
        }
    }

    // Kernel micro-benchmark: scalar vs vectorized L2 `within` at d=64,
    // the acceptance configuration. ε at the ~1% hit quantile so the
    // early-exit path is exercised without the loop degenerating. n is
    // sized so each timed repeat runs tens of milliseconds — the old
    // n=400 sweep finished in well under a millisecond, inside timer
    // jitter.
    let kd = hdsj_data::uniform(64, if quick { 2_000 } else { 4_000 }, 7)?;
    let keps = hdsj_bench::eps_for_sample_quantile(&kd, Metric::L2, 0.01, 50_000);
    let (scalar_ms, scalar_hits) = bench_within(&kd, keps, scalar_l2_within);
    let (kernel_ms, kernel_hits) = bench_within(&kd, keps, kernels::l2_within);
    // Lane reassociation may flip ε-boundary pairs by an ulp; anything
    // beyond a sliver of the hit set means a real kernel bug.
    if scalar_hits.abs_diff(kernel_hits) > scalar_hits.max(kernel_hits) / 100 {
        return Err(Error::Internal(format!(
            "kernel changed the decision set: scalar {scalar_hits} vs kernel {kernel_hits}"
        )));
    }
    let kernel_speedup = scalar_ms / kernel_ms;
    println!(
        "  kernel d=64: scalar={scalar_ms:.1}ms kernel={kernel_ms:.1}ms \
         speedup={kernel_speedup:.2}x ({scalar_hits} hits)"
    );

    // Report. Speedup rows compare each algorithm's max-thread median to
    // its serial median (1.0 when the host has a single core and the
    // max-thread sweep collapses onto serial).
    let speedup = |algo: &str| -> f64 {
        let at = |t: usize| {
            rows.iter()
                .find(|r| r.algo == algo && r.threads == t)
                .map(|r| r.median_ms)
        };
        match (at(1), at(max_threads)) {
            (Some(serial), Some(parallel)) if parallel > 0.0 => serial / parallel,
            _ => 1.0,
        }
    };

    let mut json = String::from("{");
    json.push_str("\"bench\":\"BENCH_0004\",");
    json.push_str("\"workload\":{\"kind\":\"uniform\",\"dims\":16,");
    json.push_str(&format!(
        "\"n\":{n},\"eps\":{},\"eps_quantile\":1e-4,\"metric\":\"l2\"}},",
        encode_f64(eps)
    ));
    json.push_str(&format!("\"quick\":{quick},"));
    json.push_str(&format!("\"host_threads\":{host_threads},"));
    json.push_str(&format!("\"max_threads\":{max_threads},"));
    json.push_str(&format!("\"repeats\":{REPEATS},"));
    json.push_str("\"joins\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"algo\":\"{}\",\"threads\":{},\"median_ms\":{},\"pairs\":{},\"pairs_per_sec\":{}}}",
            r.algo,
            r.threads,
            encode_f64(r.median_ms),
            r.pairs,
            encode_f64(r.pairs_per_sec)
        ));
    }
    json.push_str("],");
    json.push_str(&format!(
        "\"speedup\":{{\"msj\":{},\"bf\":{}}},",
        encode_f64(speedup("msj")),
        encode_f64(speedup("bf"))
    ));
    json.push_str(&format!(
        "\"kernel\":{{\"dims\":64,\"n\":{},\"eps\":{},\"scalar_ms\":{},\"kernel_ms\":{},\
         \"speedup\":{},\"hits\":{}}}",
        kd.len(),
        encode_f64(keps),
        encode_f64(scalar_ms),
        encode_f64(kernel_ms),
        encode_f64(kernel_speedup),
        scalar_hits
    ));
    json.push('}');

    let path = std::path::Path::new("BENCH_0004.json");
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{json}")?;
    f.flush()?;
    println!("(report written to {})", path.display());

    bench_kernel_sweep(&kd, quick)?;
    bench_phases(&ds, &spec, max_threads, quick, n)?;
    Ok(())
}

/// Candidates per probe in the dispatch sweep: 64 points at d=64 is
/// 32 KiB — L1-resident, the way refinement tiles are used — so the sweep
/// measures kernel throughput. (A full n×n sweep streams the whole
/// dataset per probe and every variant collapses onto memory bandwidth;
/// the join rows in BENCH_0004 already capture that regime.)
const SWEEP_CANDS: u32 = 64;

/// Times `reps` passes of every probe against the fixed candidate set
/// through a pair kernel, returning (median wall ms, hits excluding
/// self-pairs).
fn sweep_pair(
    ds: &hdsj_core::Dataset,
    eps: f64,
    reps: usize,
    within: impl Fn(&[f64], &[f64], f64) -> bool,
) -> (f64, u64) {
    let candidates = shuffled_ids(SWEEP_CANDS);
    let mut times = Vec::with_capacity(REPEATS);
    let mut hits = 0u64;
    for _ in 0..REPEATS {
        let eps = black_box(eps);
        hits = 0;
        let start = Instant::now();
        for _ in 0..reps {
            for (i, x) in ds.iter() {
                for &j in &candidates {
                    if j != i && within(black_box(x), black_box(ds.point(j)), eps) {
                        hits += 1;
                    }
                }
            }
        }
        hits = black_box(hits);
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(times), hits / reps as u64)
}

/// The block-kernel counterpart of [`sweep_pair`]: the same candidate set
/// transposed once into SoA tiles (tile width from the L1 probe) and
/// reused across probes, exactly how the cache-blocked join loops use it.
fn sweep_block(ds: &hdsj_core::Dataset, eps: f64, reps: usize) -> (f64, u64) {
    use hdsj_core::soa::SoABlock;
    let head = SoABlock::from_range(ds, 0..SWEEP_CANDS);
    let tile_w = hdsj_core::simd::tile::soa_tile_width(ds.dims());
    let tiles: Vec<SoABlock> = (0..head.len())
        .step_by(tile_w.max(1))
        .map(|s| {
            let e = (s + tile_w).min(head.len()) as u32;
            SoABlock::from_range(ds, s as u32..e)
        })
        .collect();
    let mut times = Vec::with_capacity(REPEATS);
    let mut hits = 0u64;
    let mut out: Vec<u32> = Vec::new();
    for _ in 0..REPEATS {
        let eps = black_box(eps);
        hits = 0;
        let start = Instant::now();
        for _ in 0..reps {
            for (i, x) in ds.iter() {
                for tile in &tiles {
                    out.clear();
                    hdsj_core::simd::l2_within_block(
                        black_box(x),
                        tile,
                        0..tile.len(),
                        eps,
                        &mut out,
                    );
                    hits += out.iter().filter(|&&j| j != i).count() as u64;
                }
            }
        }
        hits = black_box(hits);
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(times), hits / reps as u64)
}

/// The BENCH_0006 dispatch sweep: d=64 L2 `within` through every kernel
/// tier the host supports, pair and block forms, against the single-chain
/// scalar reference and the 4-lane scalar kernel. Hit counts across the
/// 4-lane kernel and every SIMD tier must agree *exactly* — that is the
/// bit-exactness contract, enforced here on real workload data, not just
/// in unit tests. ε sits at the 25% pair quantile so most candidates
/// survive deep into the dimension loop and the sweep measures kernel
/// throughput rather than early-exit latency.
fn bench_kernel_sweep(kd: &hdsj_core::Dataset, quick: bool) -> Result<()> {
    use hdsj_core::simd;
    let eps = hdsj_bench::eps_for_sample_quantile(kd, Metric::L2, 0.25, 50_000);
    let reps = if quick { 16 } else { 24 };

    struct SweepRow {
        variant: String,
        ms: f64,
        hits: u64,
    }
    let mut rows: Vec<SweepRow> = Vec::new();
    let (scalar_ms, scalar_hits) = sweep_pair(kd, eps, reps, scalar_l2_within);
    rows.push(SweepRow {
        variant: "scalar_chain".into(),
        ms: scalar_ms,
        hits: scalar_hits,
    });
    let (lanes4_ms, lanes4_hits) = sweep_pair(kd, eps, reps, kernels::l2_within);
    rows.push(SweepRow {
        variant: "lanes4".into(),
        ms: lanes4_ms,
        hits: lanes4_hits,
    });

    let saved = simd::level();
    let supported = simd::supported();
    for &tier in &supported {
        simd::set_level(tier);
        let (ms, hits) = sweep_pair(kd, eps, reps, simd::l2_within);
        if hits != lanes4_hits {
            simd::set_level(saved);
            return Err(Error::Internal(format!(
                "pair kernel at {tier:?} broke the bit-exactness contract: \
                 {hits} hits vs 4-lane {lanes4_hits}"
            )));
        }
        rows.push(SweepRow {
            variant: format!("pair_{}", tier.name()),
            ms,
            hits,
        });
        let (bms, bhits) = sweep_block(kd, eps, reps);
        if bhits != lanes4_hits {
            simd::set_level(saved);
            return Err(Error::Internal(format!(
                "block kernel at {tier:?} broke the bit-exactness contract: \
                 {bhits} hits vs 4-lane {lanes4_hits}"
            )));
        }
        rows.push(SweepRow {
            variant: format!("block_{}", tier.name()),
            ms: bms,
            hits: bhits,
        });
    }
    simd::set_level(saved);

    let mut best_speedup = 0.0f64;
    for row in &rows {
        let speedup = lanes4_ms / row.ms;
        if row.variant.starts_with("pair_") || row.variant.starts_with("block_") {
            best_speedup = best_speedup.max(speedup);
        }
        println!(
            "  sweep d=64 {:<14} median={:.1}ms speedup_vs_lanes4={:.2}x ({} hits)",
            row.variant, row.ms, speedup, row.hits
        );
    }
    println!(
        "  sweep d=64 best SIMD speedup over 4-lane kernels: {best_speedup:.2}x \
         (dispatch={})",
        simd::best().name()
    );

    let mut json = String::from("{");
    json.push_str("\"bench\":\"BENCH_0006\",");
    json.push_str("\"workload\":{\"kind\":\"uniform\",\"dims\":64,");
    json.push_str(&format!(
        "\"n\":{},\"cands\":{SWEEP_CANDS},\"reps\":{reps},\
         \"eps\":{},\"eps_quantile\":0.25,\"metric\":\"l2\"}},",
        kd.len(),
        encode_f64(eps)
    ));
    json.push_str(&format!("\"quick\":{quick},"));
    json.push_str(&format!("\"repeats\":{REPEATS},"));
    json.push_str(&format!(
        "\"dispatch\":{{\"best\":\"{}\",\"supported\":[{}]}},",
        simd::best().name(),
        supported
            .iter()
            .map(|l| format!("\"{}\"", l.name()))
            .collect::<Vec<_>>()
            .join(",")
    ));
    json.push_str("\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"variant\":\"{}\",\"median_ms\":{},\"hits\":{},\"speedup_vs_lanes4\":{}}}",
            r.variant,
            encode_f64(r.ms),
            r.hits,
            encode_f64(lanes4_ms / r.ms)
        ));
    }
    json.push_str("],");
    json.push_str(&format!(
        "\"best_simd_speedup_vs_lanes4\":{}",
        encode_f64(best_speedup)
    ));
    json.push('}');

    let path = std::path::Path::new("BENCH_0006.json");
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{json}")?;
    f.flush()?;
    println!("(dispatch sweep written to {})", path.display());
    Ok(())
}

/// One traced MSJ pass into a memory sink; every latency histogram the
/// run produced (per-phase, pool, exec) goes to `BENCH_0005.json` as
/// p50/p90/p99/max rows, and the whole metrics snapshot to
/// `BENCH_0005.prom` in Prometheus exposition format.
fn bench_phases(
    ds: &hdsj_core::Dataset,
    spec: &JoinSpec,
    threads: usize,
    quick: bool,
    n: usize,
) -> Result<()> {
    let (tracer, _sink) = hdsj_core::obs::Tracer::memory();
    let mut algo = Box::<Msj>::default();
    algo.set_threads(threads);
    algo.set_tracer(tracer.clone());
    let mut pairs = hdsj_core::VecSink::default();
    algo.self_join(ds, spec, &mut pairs)?;
    let snapshot = tracer.metrics_snapshot();

    let mut json = String::from("{");
    json.push_str("\"bench\":\"BENCH_0005\",");
    json.push_str("\"workload\":{\"kind\":\"uniform\",\"dims\":16,");
    json.push_str(&format!(
        "\"n\":{n},\"eps\":{},\"metric\":\"l2\"}},",
        encode_f64(spec.eps)
    ));
    json.push_str(&format!("\"quick\":{quick},"));
    json.push_str(&format!("\"algo\":\"msj\",\"threads\":{threads},"));
    json.push_str("\"phases\":[");
    let mut first = true;
    for (name, h) in &snapshot.hists {
        if h.count == 0 {
            continue;
        }
        if !first {
            json.push(',');
        }
        first = false;
        json.push_str(&format!(
            "{{\"name\":\"{name}\",\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.count,
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
            h.max
        ));
        println!(
            "  phase {:<24} n={:<6} p50={} p90={} p99={} max={}",
            name,
            h.count,
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
            h.max
        );
    }
    json.push_str("],");
    json.push_str(&bench_resume(ds, spec, threads)?);
    json.push('}');

    let path = std::path::Path::new("BENCH_0005.json");
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{json}")?;
    f.flush()?;
    let prom_path = std::path::Path::new("BENCH_0005.prom");
    std::fs::write(prom_path, snapshot.to_prometheus())?;
    println!(
        "(phase report written to {} and {})",
        path.display(),
        prom_path.display()
    );
    Ok(())
}

/// One checkpointed MSJ attempt in `dir` — fresh or resumed, decided by
/// whether a manifest already exists there — optionally halting at the
/// given checkpoint. Returns (wall ms, pairs); pairs is 0 for a halted run.
fn resume_attempt(
    dir: &std::path::Path,
    ds: &hdsj_core::Dataset,
    spec: &JoinSpec,
    threads: usize,
    halt: Option<(&str, u64)>,
) -> Result<(f64, u64)> {
    use hdsj_storage::{Checkpointer, Manifest, ManifestState, StorageEngine};
    let man_path = dir.join("join.manifest");
    let data_path = dir.join("join.manifest.pages");
    let (engine, mut ckpt, state);
    if man_path.exists() {
        let (man, recs) = Manifest::open_append(&man_path)?;
        state = ManifestState::replay(&recs)?;
        engine = StorageEngine::builder(256).file_backed_open(&data_path)?;
        engine.adopt_freelist(state.orphan_pages(engine.pool().num_pages()))?;
        ckpt = Checkpointer::new(&engine, man);
    } else {
        engine = StorageEngine::file_backed(&data_path, 256)?;
        state = ManifestState::default();
        ckpt = Checkpointer::new(&engine, Manifest::create(&man_path, 0)?);
    }
    if let Some((point, nth)) = halt {
        ckpt.halt_at(point, nth);
    }
    let mut msj = Msj::with_engine(engine);
    msj.set_threads(threads);
    msj.set_recovery(ckpt, state);
    let mut sink = hdsj_core::VecSink::default();
    let start = Instant::now();
    let res = msj.self_join(ds, spec, &mut sink);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    match res {
        Ok(_) => Ok((ms, sink.pairs.len() as u64)),
        Err(Error::Canceled(_)) if halt.is_some() => Ok((ms, 0)),
        Err(e) => Err(e),
    }
}

/// The resumed-join timing row: one checkpointed run measured end to end,
/// one halted at the first sealed sort level, and the resume of the halted
/// run from its manifest. The resumed pair count must match the full run —
/// this doubles as a smoke check that resume is exact, not just fast.
fn bench_resume(ds: &hdsj_core::Dataset, spec: &JoinSpec, threads: usize) -> Result<String> {
    const HALT: (&str, u64) = ("msj.sort_sealed", 1);
    let base = std::env::temp_dir().join(format!("hdsj-bench-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let full_dir = base.join("full");
    let crash_dir = base.join("crash");
    std::fs::create_dir_all(&full_dir)?;
    std::fs::create_dir_all(&crash_dir)?;

    let (full_ms, pairs) = resume_attempt(&full_dir, ds, spec, threads, None)?;
    let (halted_ms, _) = resume_attempt(&crash_dir, ds, spec, threads, Some(HALT))?;
    let (resumed_ms, resumed_pairs) = resume_attempt(&crash_dir, ds, spec, threads, None)?;
    let _ = std::fs::remove_dir_all(&base);
    if resumed_pairs != pairs {
        return Err(Error::Internal(format!(
            "resumed join found {resumed_pairs} pairs, full run found {pairs}"
        )));
    }
    println!(
        "  resume: checkpointed full={full_ms:.1}ms halted@{}#{}={halted_ms:.1}ms \
         resumed={resumed_ms:.1}ms ({pairs} pairs)",
        HALT.0, HALT.1
    );
    Ok(format!(
        "\"resume\":{{\"halt_point\":\"{}@{}\",\"checkpointed_full_ms\":{},\"halted_ms\":{},\
         \"resumed_ms\":{},\"pairs\":{}}}",
        HALT.0,
        HALT.1,
        encode_f64(full_ms),
        encode_f64(halted_ms),
        encode_f64(resumed_ms),
        pairs
    ))
}

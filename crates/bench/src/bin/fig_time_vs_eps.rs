//! E2 — response time vs ε (uniform data, d = 8).
//!
//! As ε grows the result size explodes; the filter structures converge
//! toward brute force while their overheads stay, so the curves cross.

use hdsj_bench::{fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};

fn main() -> hdsj_core::Result<()> {
    let n = scaled(10_000);
    let d = 8;
    let ds = hdsj_data::uniform(d, n, 42)?;
    let mut table = Table::new(
        "E2_time_vs_eps",
        &["eps", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ"],
    );
    for eps in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![format!("{eps:.2}")];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

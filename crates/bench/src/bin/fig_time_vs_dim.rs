//! E1 — response time vs dimensionality (uniform data, ε calibrated for a
//! roughly constant expected result size across d).
//!
//! Reproduces the paper's headline dimensionality figure: BF is flat-ish and
//! quadratic, GRID drops out past its 3^d cap, EKDB and RSJ degrade with d,
//! MSJ degrades most gracefully.

use hdsj_bench::{fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_data::analytic::eps_for_expected_pairs;

fn main() -> hdsj_core::Result<()> {
    let n = scaled(10_000);
    let target_pairs = n as f64 * 2.0;
    let mut table = Table::new(
        "E1_time_vs_dim",
        &[
            "d", "eps", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ",
        ],
    );
    for d in [2usize, 4, 8, 16, 32, 64] {
        let eps = eps_for_expected_pairs(Metric::L2, d, n, target_pairs).min(0.95);
        let ds = hdsj_data::uniform(d, n, d as u64)?;
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![d.to_string(), format!("{eps:.3}")];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

//! E7 — the real-data surrogate: similarity self-join of time-series
//! Fourier feature vectors (see DESIGN.md §5 for the substitution).
//!
//! Feature energy concentrates in the leading dimensions, so the data is
//! highly correlated and non-uniform — the regime the paper's real
//! workloads probe.

use hdsj_bench::{eps_for_sample_quantile, fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_data::timeseries::fourier_dataset;

fn main() -> hdsj_core::Result<()> {
    let n = scaled(8_000);
    let mut table = Table::new(
        "E7_real_data",
        &[
            "d", "eps", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ", "MSJ",
        ],
    );
    for d in [4usize, 8, 16] {
        let ds = fourier_dataset(d, n, 128, 2024)?;
        let frac = 4.0 * n as f64 / (n as f64 * (n as f64 - 1.0) / 2.0);
        let eps = eps_for_sample_quantile(&ds, Metric::L2, frac, 20_000);
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![d.to_string(), format!("{eps:.4}")];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

//! E8 — MSJ phase breakdown: level assignment, external sort, sweep.
//!
//! Shows where MSJ spends its time as N grows; the sort dominates, and all
//! phases are sequential I/O.

use hdsj_bench::{fmt_ms, measure_self_join, scaled, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_msj::Msj;

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let spec = JoinSpec::new(0.15, Metric::L2);
    let mut table = Table::new(
        "E8_msj_phases",
        &[
            "n",
            "assign",
            "sort",
            "sweep",
            "total",
            "io_reads",
            "io_writes",
        ],
    );
    for base in [25_000usize, 50_000, 100_000] {
        let n = scaled(base);
        let ds = hdsj_data::uniform(d, n, 3)?;
        let mut msj = Msj::default();
        let m = measure_self_join(&mut msj, &ds, &spec)?;
        let phase = |name: &str| {
            m.stats
                .phase(name)
                .map(|d| fmt_ms(d.as_secs_f64() * 1e3))
                .unwrap_or_default()
        };
        table.row(vec![
            n.to_string(),
            phase("assign"),
            phase("sort"),
            phase("sweep"),
            fmt_ms(m.elapsed_ms),
            m.stats.io.reads.to_string(),
            m.stats.io.writes.to_string(),
        ]);
    }
    table.emit()?;
    Ok(())
}

//! Runs every experiment binary's logic in sequence — the one-command
//! regeneration of the paper's full evaluation. Equivalent to invoking each
//! `fig_*` / `tbl_*` target; respects `HDSJ_QUICK` / `HDSJ_SCALE`.

use std::process::Command;

const TARGETS: [&str; 14] = [
    "fig_time_vs_dim",
    "fig_time_vs_eps",
    "fig_time_vs_n",
    "fig_io_vs_n",
    "tbl_memory_vs_dim",
    "fig_skew",
    "fig_real_data",
    "tbl_msj_phases",
    "tbl_level_occupancy",
    "tbl_filter_quality",
    "fig_buffer_sweep",
    "tbl_ablation",
    "fig_histograms",
    "fig_disk_baseline",
];

fn main() -> hdsj_core::Result<()> {
    // The sibling binaries sit next to this one.
    let me = std::env::current_exe()?;
    let dir = me.parent().ok_or_else(|| {
        hdsj_core::Error::Internal("current_exe has no parent directory".into())
    })?;
    let mut failed = Vec::new();
    for target in TARGETS {
        println!("\n########## {target} ##########");
        let status = Command::new(dir.join(target)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{target} exited with {s}");
                failed.push(target);
            }
            Err(e) => {
                eprintln!("{target} failed to start: {e}");
                failed.push(target);
            }
        }
    }
    if let Err(e) = aggregate_jsonl() {
        eprintln!("could not aggregate JSONL results: {e}");
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in target/experiments/",
            TARGETS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
    Ok(())
}

/// Concatenates every per-experiment `target/experiments/*.jsonl` into one
/// `target/experiments/experiments.jsonl` — the single structured artefact
/// CI uploads (one JSON object per experiment point, tagged with its
/// experiment name).
fn aggregate_jsonl() -> std::io::Result<()> {
    use std::io::Write;
    let dir = std::path::Path::new("target/experiments");
    if !dir.is_dir() {
        return Ok(());
    }
    let mut sources: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|ext| ext == "jsonl")
                && p.file_name().is_some_and(|n| n != "experiments.jsonl")
        })
        .collect();
    sources.sort();
    let out_path = dir.join("experiments.jsonl");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
    let mut rows = 0usize;
    for src in &sources {
        let text = std::fs::read_to_string(src)?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            writeln!(out, "{line}")?;
            rows += 1;
        }
    }
    out.flush()?;
    println!(
        "\naggregated {rows} rows from {} experiments into {}",
        sources.len(),
        out_path.display()
    );
    Ok(())
}

//! Runs every experiment binary's logic in sequence — the one-command
//! regeneration of the paper's full evaluation. Equivalent to invoking each
//! `fig_*` / `tbl_*` target; respects `HDSJ_QUICK` / `HDSJ_SCALE`.

use std::process::Command;

const TARGETS: [&str; 14] = [
    "fig_time_vs_dim",
    "fig_time_vs_eps",
    "fig_time_vs_n",
    "fig_io_vs_n",
    "tbl_memory_vs_dim",
    "fig_skew",
    "fig_real_data",
    "tbl_msj_phases",
    "tbl_level_occupancy",
    "tbl_filter_quality",
    "fig_buffer_sweep",
    "tbl_ablation",
    "fig_histograms",
    "fig_disk_baseline",
];

fn main() {
    // The sibling binaries sit next to this one.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failed = Vec::new();
    for target in TARGETS {
        println!("\n########## {target} ##########");
        let status = Command::new(dir.join(target)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{target} exited with {s}");
                failed.push(target);
            }
            Err(e) => {
                eprintln!("{target} failed to start: {e}");
                failed.push(target);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in target/experiments/",
            TARGETS.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}

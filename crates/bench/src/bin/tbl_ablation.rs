//! E12 — design ablations: MSJ's space-filling curve (Hilbert vs Z-order)
//! and RSJ's build strategy (Hilbert pack vs STR vs dynamic inserts).

use hdsj_bench::{fmt_ms, measure_self_join, scaled, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_msj::Msj;
use hdsj_rtree::{BuildStrategy, RsjJoin};
use hdsj_sfc::Curve;

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let n = scaled(20_000);
    let ds = hdsj_data::uniform(d, n, 29)?;
    let spec = JoinSpec::new(0.15, Metric::L2);

    let mut table = Table::new(
        "E12_ablation",
        &["variant", "time", "candidates", "results"],
    );
    for curve in [Curve::Hilbert, Curve::ZOrder] {
        let mut msj = Msj::with_curve(curve);
        let m = measure_self_join(&mut msj, &ds, &spec)?;
        table.row(vec![
            format!("MSJ/{}", curve.label()),
            fmt_ms(m.elapsed_ms),
            m.stats.candidates.to_string(),
            m.stats.results.to_string(),
        ]);
    }
    for threads in [2usize, 4] {
        let mut msj = Msj::with_refine_threads(threads);
        let m = measure_self_join(&mut msj, &ds, &spec)?;
        table.row(vec![
            format!("MSJ/refine x{threads}"),
            fmt_ms(m.elapsed_ms),
            m.stats.candidates.to_string(),
            m.stats.results.to_string(),
        ]);
    }
    for strategy in [
        BuildStrategy::HilbertPack,
        BuildStrategy::Str,
        BuildStrategy::DynamicInsert,
    ] {
        let mut rsj = RsjJoin::with_strategy(strategy);
        let m = measure_self_join(&mut rsj, &ds, &spec)?;
        table.row(vec![
            format!("RSJ/{strategy:?}"),
            fmt_ms(m.elapsed_ms),
            m.stats.candidates.to_string(),
            m.stats.results.to_string(),
        ]);
    }
    table.emit()?;
    Ok(())
}

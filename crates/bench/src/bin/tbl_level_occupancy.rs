//! E9 — MSJ level-file occupancy: how many points land in each hierarchy
//! level as ε and d vary.
//!
//! Small ε pushes cubes into deep (fine) levels; large ε and high d push
//! mass toward level 0 — the size-separation behaviour that drives MSJ's
//! costs.

use hdsj_bench::{scaled, Table};
use hdsj_msj::Msj;

fn main() -> hdsj_core::Result<()> {
    let n = scaled(20_000);
    let mut table = Table::new(
        "E9_level_occupancy",
        &["d", "eps", "depth", "level_counts (0..depth)"],
    );
    for (d, eps) in [(2usize, 0.01f64), (2, 0.1), (8, 0.05), (8, 0.2), (32, 0.5)] {
        let ds = hdsj_data::uniform(d, n, d as u64)?;
        let msj = Msj::default();
        let hist = msj.level_histogram(&ds, eps)?;
        table.row(vec![
            d.to_string(),
            format!("{eps}"),
            (hist.len() - 1).to_string(),
            hist.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    table.emit()?;
    Ok(())
}

//! E6 — skewed (clustered) data: response time as clustering tightens.
//!
//! Gaussian clusters with Zipf-skewed sizes; ε is sampled per workload so
//! the result size stays comparable. Skew concentrates work in few cells /
//! nodes, which helps space-partitioning methods until hot cells saturate.

use hdsj_bench::{eps_for_sample_quantile, fmt_ms, measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_data::ClusterSpec;

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let n = scaled(10_000);
    let mut table = Table::new(
        "E6_skew",
        &[
            "clusters", "sigma", "zipf", "eps", "results", "BF", "SM1D", "GRID", "EKDB", "RSJ",
            "MSJ",
        ],
    );
    let configs = [
        (64usize, 0.05f64, 0.0f64),
        (64, 0.05, 1.0),
        (16, 0.05, 1.0),
        (16, 0.02, 1.0),
        (4, 0.02, 1.0),
    ];
    for (clusters, sigma, zipf) in configs {
        let spec_ds = ClusterSpec {
            clusters,
            sigma,
            zipf_theta: zipf,
            noise_fraction: 0.1,
        };
        let ds = hdsj_data::gaussian_clusters(d, n, spec_ds, 99)?;
        let frac = 4.0 * n as f64 / (n as f64 * (n as f64 - 1.0) / 2.0);
        let eps = eps_for_sample_quantile(&ds, Metric::L2, frac, 20_000);
        let spec = JoinSpec::new(eps, Metric::L2);
        let mut cells = vec![
            clusters.to_string(),
            format!("{sigma}"),
            format!("{zipf}"),
            format!("{eps:.3}"),
        ];
        let mut results = String::from("-");
        let mut times = Vec::new();
        for algo in Algo::all() {
            let mut a = algo.make();
            match measure_self_join(a.as_mut(), &ds, &spec) {
                Ok(m) => {
                    results = m.stats.results.to_string();
                    times.push(fmt_ms(m.elapsed_ms));
                }
                Err(_) => times.push("n/a".into()),
            }
        }
        cells.push(results);
        cells.extend(times);
        table.row(cells);
    }
    table.emit()?;
    Ok(())
}

//! E4 — page I/O vs dataset size (d = 8, fixed ε, fixed 128-frame pool).
//!
//! MSJ's I/O is the sequential write/sort/scan of its level files; RSJ adds
//! the random node accesses of the synchronized traversal. Both run on the
//! same storage engine so the page counts are directly comparable.

use hdsj_bench::{measure_self_join, scaled, Table};
use hdsj_core::{JoinSpec, Metric};
use hdsj_msj::Msj;
use hdsj_rtree::RsjJoin;
use hdsj_storage::StorageEngine;

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let spec = JoinSpec::new(0.15, Metric::L2);
    let pool = 128;
    let mut table = Table::new(
        "E4_io_vs_n",
        &["n", "RSJ_reads", "RSJ_writes", "MSJ_reads", "MSJ_writes"],
    );
    for base in [10_000usize, 20_000, 40_000, 80_000] {
        let n = scaled(base);
        let ds = hdsj_data::uniform(d, n, 11)?;
        let mut rsj = RsjJoin::with_engine(StorageEngine::in_memory(pool));
        let rsj_m = measure_self_join(&mut rsj, &ds, &spec)?;
        let mut msj = Msj::with_engine(StorageEngine::in_memory(pool));
        let msj_m = measure_self_join(&mut msj, &ds, &spec)?;
        table.row(vec![
            n.to_string(),
            rsj_m.stats.io.reads.to_string(),
            rsj_m.stats.io.writes.to_string(),
            msj_m.stats.io.reads.to_string(),
            msj_m.stats.io.writes.to_string(),
        ]);
    }
    table.emit()?;
    Ok(())
}

//! E10 — filter quality: candidate pairs vs verified results per algorithm.
//!
//! BF tests every pair; the structures prune. Precision = results /
//! candidates measures how much exact-distance work the filter wastes.

use hdsj_bench::{measure_self_join, scaled, Algo, Table};
use hdsj_core::{JoinSpec, Metric};

fn main() -> hdsj_core::Result<()> {
    let d = 8;
    let n = scaled(10_000);
    let ds = hdsj_data::uniform(d, n, 17)?;
    let spec = JoinSpec::new(0.2, Metric::L2);
    let mut table = Table::new(
        "E10_filter_quality",
        &["algo", "candidates", "results", "precision", "dist_evals"],
    );
    for algo in Algo::all() {
        let mut a = algo.make();
        match measure_self_join(a.as_mut(), &ds, &spec) {
            Ok(m) => table.row(vec![
                algo.name().to_string(),
                m.stats.candidates.to_string(),
                m.stats.results.to_string(),
                format!("{:.4}", m.stats.filter_precision()),
                m.stats.dist_evals.to_string(),
            ]),
            Err(_) => table.row(vec![
                algo.name().to_string(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
            ]),
        }
    }
    table.emit()?;
    Ok(())
}
